// Tests for the dedicated I/O server subsystem (src/server/): protocol
// round trips byte-identical with direct library calls, per-session
// admission control and backpressure, bounded in-flight accounting under a
// concurrent stress mix, and the accepting -> draining -> stopped shutdown
// state machine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "core/access_methods.hpp"
#include "device/ram_disk.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/reqtrace.hpp"
#include "server/client.hpp"
#include "server/io_server.hpp"
#include "test_helpers.hpp"
#include "util/bytes.hpp"

// Count payload-sized global allocations so we can prove the covering-
// extent read path is zero-copy: client spans reach the devices' vectored
// I/O directly, with no per-request staging buffer.  Small allocations
// (futures, scheduler nodes, iovec arrays) are expected and uncounted.
namespace {
constexpr std::size_t kStagingThresholdBytes = 16 * 1024;
std::atomic<std::uint64_t> g_large_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  if (size >= kStagingThresholdBytes) {
    g_large_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (size >= kStagingThresholdBytes) {
    g_large_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pio::server {
namespace {

using namespace std::chrono_literals;

/// Decorator that can hold every device operation at a gate, so tests can
/// pin requests "in service" deterministically.
class GateDevice final : public BlockDevice {
 public:
  explicit GateDevice(std::unique_ptr<BlockDevice> inner)
      : inner_(std::move(inner)) {}

  void hold() {
    std::scoped_lock lock(mutex_);
    open_ = false;
  }
  void release() {
    {
      std::scoped_lock lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

  Status read(std::uint64_t offset, std::span<std::byte> out) override {
    pass();
    return inner_->read(offset, out);
  }
  Status write(std::uint64_t offset, std::span<const std::byte> in) override {
    pass();
    return inner_->write(offset, in);
  }
  Status readv(std::span<const IoVec> iov) override {
    pass();
    return inner_->readv(iov);
  }
  Status writev(std::span<const ConstIoVec> iov) override {
    pass();
    return inner_->writev(iov);
  }
  std::uint64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  const std::string& name() const noexcept override { return inner_->name(); }
  const DeviceCounters& counters() const noexcept override {
    return inner_->counters();
  }

 private:
  void pass() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return open_; });
  }

  std::unique_ptr<BlockDevice> inner_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = true;
};

/// FileSystem + IoServer over RAM devices, optionally gate-decorated.
struct ServerRig {
  DeviceArray devices;
  std::vector<GateDevice*> gates;
  std::unique_ptr<FileSystem> fs;
  std::unique_ptr<IoServer> server;

  explicit ServerRig(IoServerOptions options = {}, bool gated = false,
                     std::size_t num_devices = 4) {
    for (std::size_t d = 0; d < num_devices; ++d) {
      auto ram =
          std::make_unique<RamDisk>("ram" + std::to_string(d), 4ull << 20);
      if (gated) {
        auto gate = std::make_unique<GateDevice>(std::move(ram));
        gates.push_back(gate.get());
        devices.add(std::move(gate));
      } else {
        devices.add(std::move(ram));
      }
    }
    auto formatted = FileSystem::format(devices);
    EXPECT_TRUE(formatted.ok()) << formatted.error().to_string();
    fs = std::move(formatted).take();
    server = std::make_unique<IoServer>(*fs, devices, options);
  }

  std::shared_ptr<ParallelFile> create(const std::string& name,
                                       std::uint64_t capacity_records = 1024,
                                       std::uint32_t record_bytes = 64) {
    CreateOptions opts;
    opts.name = name;
    opts.organization = Organization::sequential;
    opts.record_bytes = record_bytes;
    opts.capacity_records = capacity_records;
    auto file = fs->create(opts);
    EXPECT_TRUE(file.ok()) << file.error().to_string();
    return std::move(file).take();
  }

  void hold_all() {
    for (GateDevice* g : gates) g->hold();
  }
  void release_all() {
    for (GateDevice* g : gates) g->release();
  }
};

Client must_connect(IoServer& server) {
  auto client = Client::connect(server);
  EXPECT_TRUE(client.ok()) << client.error().to_string();
  return std::move(client).take();
}

// ------------------------------------------------------------- control ops

TEST(Server, OpenStatCloseRoundTrip) {
  ServerRig rig;
  rig.create("data", 512, 128);
  Client client = must_connect(*rig.server);

  auto token = client.open("data");
  ASSERT_TRUE(token.ok()) << token.error().to_string();
  EXPECT_NE(*token, 0u);

  auto meta = client.stat("data");
  ASSERT_TRUE(meta.ok()) << meta.error().to_string();
  EXPECT_EQ(meta->record_bytes, 128u);
  EXPECT_EQ(meta->capacity_records, 512u);

  PIO_EXPECT_OK(client.close(*token));
  EXPECT_EQ(client.close(*token).code(), Errc::not_found);
  EXPECT_EQ(client.open("nope").code(), Errc::not_found);
  EXPECT_EQ(client.stat("nope").code(), Errc::not_found);
}

TEST(Server, ReadWriteRecordsMatchDirect) {
  ServerRig rig;
  auto direct = rig.create("data", 256, 64);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());

  // Server-write, then compare a direct read against a server read.
  std::vector<std::byte> in(64 * 64);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::byte>((i * 7 + 3) & 0xff);
  }
  PIO_ASSERT_OK(client.write_records(*token, 16, 64, in));

  std::vector<std::byte> via_server(in.size());
  std::vector<std::byte> via_direct(in.size());
  PIO_ASSERT_OK(client.read_records(*token, 16, 64, via_server));
  PIO_ASSERT_OK(direct->read_records(16, 64, via_direct));
  EXPECT_EQ(via_server, via_direct);
  EXPECT_EQ(via_server, in);

  // Direct-write, server-read.
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::byte>((i * 13 + 1) & 0xff);
  }
  PIO_ASSERT_OK(direct->write_records(128, 64, in));
  PIO_ASSERT_OK(client.read_records(*token, 128, 64, via_server));
  EXPECT_EQ(via_server, in);
}

TEST(Server, ReadNeverWrittenMatchesDirectZeroes) {
  ServerRig rig;
  auto direct = rig.create("data", 256, 64);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());

  std::vector<std::byte> via_server(32 * 64, std::byte{0xaa});
  std::vector<std::byte> via_direct(32 * 64, std::byte{0x55});
  PIO_ASSERT_OK(client.read_records(*token, 100, 32, via_server));
  PIO_ASSERT_OK(direct->read_records(100, 32, via_direct));
  EXPECT_EQ(via_server, via_direct);
}

TEST(Server, StridedReadMatchesDirect) {
  ServerRig rig;
  auto direct = rig.create("data", 2048, 64);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());

  std::vector<std::byte> all(2048 * 64);
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<std::byte>((i * 31 + 5) & 0xff);
  }
  PIO_ASSERT_OK(direct->write_records(0, 2048, all));

  const StridedSpec spec{3, 2, 8, 200};  // holes between groups
  std::vector<std::byte> via_server(spec.total_records() * 64);
  std::vector<std::byte> via_direct(spec.total_records() * 64);
  auto future = client.read_strided_async(*token, spec, via_server);
  ASSERT_TRUE(future.ok()) << future.error().to_string();
  PIO_ASSERT_OK(future->wait());
  EXPECT_EQ(future->get().transferred, spec.total_records());
  PIO_ASSERT_OK(read_strided(*direct, spec, via_direct));
  EXPECT_EQ(via_server, via_direct);
}

TEST(Server, StridedWritePreservesHolesLikeDirect) {
  ServerRig rig;
  auto twin_a = rig.create("served", 2048, 64);
  auto twin_b = rig.create("direct", 2048, 64);

  // Same pre-existing content in both twins (the future holes).
  std::vector<std::byte> base(2048 * 64);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<std::byte>((i * 11 + 7) & 0xff);
  }
  PIO_ASSERT_OK(twin_a->write_records(0, 2048, base));
  PIO_ASSERT_OK(twin_b->write_records(0, 2048, base));

  const StridedSpec spec{5, 3, 16, 100};
  std::vector<std::byte> in(spec.total_records() * 64);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::byte>((i * 17 + 9) & 0xff);
  }

  Client client = must_connect(*rig.server);
  auto token = client.open("served");
  ASSERT_TRUE(token.ok());
  auto future = client.write_strided_async(*token, spec, in);
  ASSERT_TRUE(future.ok()) << future.error().to_string();
  PIO_ASSERT_OK(future->wait());
  PIO_ASSERT_OK(write_strided(*twin_b, spec, in));

  std::vector<std::byte> got_a(base.size());
  std::vector<std::byte> got_b(base.size());
  PIO_ASSERT_OK(twin_a->read_records(0, 2048, got_a));
  PIO_ASSERT_OK(twin_b->read_records(0, 2048, got_b));
  EXPECT_EQ(got_a, got_b);  // written groups AND untouched holes identical
}

TEST(Server, FlushBumpsCatalogGeneration) {
  ServerRig rig;
  rig.create("data", 128, 64);
  Client client = must_connect(*rig.server);
  const std::uint64_t gen = rig.fs->catalog_generation();
  PIO_ASSERT_OK(client.flush());
  EXPECT_GT(rig.fs->catalog_generation(), gen);
}

// ------------------------------------------------------------ error paths

TEST(Server, OutOfRangeSurfacesThroughFuture) {
  ServerRig rig;
  rig.create("data", 64, 64);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());
  std::vector<std::byte> out(64);
  EXPECT_EQ(client.read_records(*token, 1000, 1, out).code(),
            Errc::out_of_range);
}

TEST(Server, UndersizedSpanRejected) {
  ServerRig rig;
  rig.create("data", 64, 64);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());
  std::vector<std::byte> tiny(16);  // 1 record needs 64 bytes
  EXPECT_EQ(client.read_records(*token, 0, 1, tiny).code(),
            Errc::invalid_argument);
  EXPECT_EQ(client.write_records(*token, 0, 1, tiny).code(),
            Errc::invalid_argument);
}

TEST(Server, UnknownTokenAndSessionRejected) {
  ServerRig rig;
  rig.create("data", 64, 64);
  Client client = must_connect(*rig.server);
  std::vector<std::byte> out(64);
  EXPECT_EQ(client.read_records(FileToken{42}, 0, 1, out).code(),
            Errc::not_found);
  EXPECT_EQ(rig.server->submit(SessionId{999}, FlushOp{}).code(),
            Errc::not_found);
}

// ---------------------------------------------- admission & backpressure

TEST(Server, OverloadedRejectsAndSessionSurvives) {
  IoServerOptions options;
  options.dispatchers = 2;
  options.queue_capacity = 8;
  options.max_inflight_per_session = 2;
  ServerRig rig(options, /*gated=*/true, /*num_devices=*/1);
  rig.create("data", 256, 64);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());

  rig.hold_all();
  std::vector<std::byte> b1(64), b2(64), b3(64);
  auto f1 = client.read_async(*token, 0, 1, b1);
  auto f2 = client.read_async(*token, 1, 1, b2);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());

  // Third request exceeds the session's in-flight bound: a DISTINCT error,
  // nothing queued.
  auto f3 = client.read_async(*token, 2, 1, b3);
  ASSERT_FALSE(f3.ok());
  EXPECT_EQ(f3.code(), Errc::overloaded);

  rig.release_all();
  PIO_EXPECT_OK(f1->wait());
  PIO_EXPECT_OK(f2->wait());

  // Session state uncorrupted: the same token still works.
  PIO_EXPECT_OK(client.read_records(*token, 2, 1, b3));
}

TEST(Server, SessionByteBoundRejectsLargeRequest) {
  IoServerOptions options;
  options.max_inflight_bytes_per_session = 1024;
  ServerRig rig(options);
  rig.create("data", 256, 64);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());

  std::vector<std::byte> big(2048);
  auto rejected = client.read_async(*token, 0, 32, big);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), Errc::overloaded);

  std::vector<std::byte> small(512);
  PIO_EXPECT_OK(client.read_records(*token, 0, 8, small));
}

TEST(Server, QueueCapacityBoundsAccepted) {
  IoServerOptions options;
  options.dispatchers = 1;
  options.queue_capacity = 1;
  options.max_inflight_per_session = 16;
  // Pin the lone dispatcher with a synchronous sieved op: plain requests
  // are submit-and-move-on and would drain the queue before it ever fills.
  options.sieve.path = SievePath::sieve;
  ServerRig rig(options, /*gated=*/true, /*num_devices=*/1);
  rig.create("data", 2048, 64);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());

  rig.hold_all();
  const StridedSpec spec{0, 2, 8, 16};
  std::vector<std::byte> pin_in(spec.total_records() * 64);
  std::vector<std::byte> b2(64), b3(64);
  auto f1 = client.write_strided_async(*token, spec, pin_in);
  ASSERT_TRUE(f1.ok());
  // Wait until the dispatcher has picked request 1 up (queue empty) and is
  // pinned at the gate.
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while ((rig.server->busy_dispatchers() < 1 ||
          rig.server->queue_depth() != 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(rig.server->busy_dispatchers(), 1u);
  ASSERT_EQ(rig.server->queue_depth(), 0u);

  auto f2 = client.read_async(*token, 1, 1, b2);  // fills the queue
  ASSERT_TRUE(f2.ok());
  auto f3 = client.read_async(*token, 2, 1, b3);  // queue full
  ASSERT_FALSE(f3.ok());
  EXPECT_EQ(f3.code(), Errc::overloaded);

  rig.release_all();
  PIO_EXPECT_OK(f1->wait());
  PIO_EXPECT_OK(f2->wait());
}

// The concurrency stress the TSan CI job gates on: several client threads
// with windows of in-flight mixed reads/writes, bounded by admission
// control, against the full dispatcher + scheduler stack.
TEST(Server, InflightAccountingStress) {
  IoServerOptions options;
  options.dispatchers = 3;
  options.queue_capacity = 32;
  options.max_inflight_per_session = 8;
  ServerRig rig(options);
  rig.create("data", 4096, 64);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::uint64_t accepted0 = registry.counter("server.accepted").value();
  const std::uint64_t completed0 = registry.counter("server.completed").value();

  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 64;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::connect(*rig.server);
      if (!client.ok()) {
        ++failures;
        return;
      }
      auto token = client->open("data");
      if (!token.ok()) {
        ++failures;
        return;
      }
      const std::uint64_t base = t * 1024;
      std::vector<std::vector<std::byte>> buffers(kOpsPerThread);
      std::deque<Future> window;
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        buffers[i].assign(64, std::byte{static_cast<unsigned char>(i)});
        const std::uint64_t record = base + i;  // disjoint extents
        for (;;) {
          auto future =
              (i % 2 == 0)
                  ? client->write_async(*token, record, 1, buffers[i])
                  : client->read_async(*token, record, 1, buffers[i]);
          if (future.ok()) {
            window.push_back(*future);
            break;
          }
          if (future.code() != Errc::overloaded) {
            ++failures;
            return;
          }
          // Backpressure: retire the oldest in-flight op, then retry.
          if (!window.empty()) {
            if (!window.front().wait().ok()) ++failures;
            window.pop_front();
          } else {
            std::this_thread::yield();
          }
        }
        while (window.size() >= 6) {
          if (!window.front().wait().ok()) ++failures;
          window.pop_front();
        }
      }
      for (Future& f : window) {
        if (!f.wait().ok()) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(rig.server->inflight(), 0u);
  EXPECT_EQ(registry.gauge("server.inflight").value(), 0);
  EXPECT_EQ(registry.gauge("server.inflight_bytes").value(), 0);
  // Every accepted request completed (the two counters moved in lockstep;
  // +2 per thread for open, +ops; rejections are counted separately).
  EXPECT_EQ(registry.counter("server.accepted").value() - accepted0,
            registry.counter("server.completed").value() - completed0);
}

// --------------------------------------------------------------- shutdown

TEST(Server, GracefulShutdownDrainsAcceptedAndRejectsLate) {
  IoServerOptions options;
  options.dispatchers = 2;
  options.queue_capacity = 16;
  ServerRig rig(options, /*gated=*/true, /*num_devices=*/1);
  rig.create("data", 256, 64);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());

  rig.hold_all();
  std::vector<std::vector<std::byte>> buffers(4, std::vector<std::byte>(64));
  std::vector<Future> accepted;
  for (std::uint64_t i = 0; i < 4; ++i) {
    auto f = client.read_async(*token, i, 1, buffers[i]);
    ASSERT_TRUE(f.ok());
    accepted.push_back(*f);
  }

  std::thread closer([&] { PIO_EXPECT_OK(rig.server->shutdown()); });
  // Wait for drain mode, then verify late submits are refused with the
  // drain-specific error while accepted work is still in flight.
  while (rig.server->state() != IoServer::State::draining) {
    std::this_thread::yield();
  }
  std::vector<std::byte> late(64);
  auto rejected = client.read_async(*token, 5, 1, late);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), Errc::shutting_down);
  EXPECT_EQ(rig.server->connect().code(), Errc::shutting_down);

  rig.release_all();
  closer.join();
  EXPECT_EQ(rig.server->state(), IoServer::State::stopped);
  EXPECT_EQ(rig.server->inflight(), 0u);
  for (Future& f : accepted) {
    ASSERT_TRUE(f.ready());
    PIO_EXPECT_OK(f.wait());  // every accepted request was drained, not dropped
  }
  // Still rejected after the drain completes; shutdown is idempotent.
  EXPECT_EQ(client.read_async(*token, 5, 1, late).code(), Errc::shutting_down);
  PIO_EXPECT_OK(rig.server->shutdown());
}

TEST(Server, SessionIsolation) {
  ServerRig rig;
  rig.create("data", 256, 64);
  Client a = must_connect(*rig.server);
  Client b = must_connect(*rig.server);
  EXPECT_NE(a.session(), b.session());

  auto ta = a.open("data");
  auto tb = b.open("data");
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());

  // Tokens are per-session namespaces: A closing its token must not
  // disturb B's.
  PIO_EXPECT_OK(a.close(*ta));
  std::vector<std::byte> out(64);
  PIO_EXPECT_OK(b.read_records(*tb, 0, 1, out));
  // And A's token is gone while B's still resolves.
  EXPECT_EQ(a.read_records(*ta, 0, 1, out).code(), Errc::not_found);
}

TEST(Server, DisconnectReleasesOpenFiles) {
  ServerRig rig;
  rig.create("data", 64, 64);
  {
    Client client = must_connect(*rig.server);
    auto token = client.open("data");
    ASSERT_TRUE(token.ok());
    EXPECT_EQ(rig.server->session_count(), 1u);
    // remove() fails while the server session holds the file open.
    EXPECT_EQ(rig.fs->remove("data").code(), Errc::busy);
  }
  EXPECT_EQ(rig.server->session_count(), 0u);
  PIO_EXPECT_OK(rig.fs->remove("data"));
}

// ----------------------------------------------------- futures & batches

TEST(Server, FutureWaitForBoundsTheWait) {
  ServerRig rig({}, /*gated=*/true, /*num_devices=*/1);
  rig.create("data", 64, 64);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());

  rig.hold_all();
  std::vector<std::byte> out(64);
  auto future = client.read_async(*token, 0, 1, out);
  ASSERT_TRUE(future.ok());
  EXPECT_FALSE(future->ready());
  EXPECT_EQ(future->wait_for(50ms), std::nullopt);

  rig.release_all();
  auto resolved = future->wait_for(5000ms);
  ASSERT_TRUE(resolved.has_value());
  PIO_EXPECT_OK(*resolved);
  EXPECT_TRUE(future->ready());
}

TEST(Server, IoBatchWaitForTimesOutAndRecovers) {
  IoBatch batch;
  batch.expect(1);
  EXPECT_EQ(batch.wait_for(50ms), std::nullopt);  // nothing lost: still armed
  EXPECT_EQ(batch.pending(), 1u);

  std::thread completer([&] {
    std::this_thread::sleep_for(20ms);
    batch.complete(ok_status());
  });
  auto st = batch.wait_for(5000ms);
  completer.join();
  ASSERT_TRUE(st.has_value());
  PIO_EXPECT_OK(*st);

  // Error propagation matches wait().
  batch.expect(1);
  batch.complete(make_error(Errc::media_error, "boom"));
  auto err = batch.wait_for(1000ms);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code(), Errc::media_error);
}

// ------------------------------------------------------------- profiling

/// Decorator that prices every device operation with a fixed sleep, so a
/// request's device-stage interval has a known lower bound.
class LatencyDevice final : public BlockDevice {
 public:
  LatencyDevice(std::unique_ptr<BlockDevice> inner,
                std::chrono::microseconds delay)
      : inner_(std::move(inner)), delay_(delay) {}

  Status read(std::uint64_t offset, std::span<std::byte> out) override {
    std::this_thread::sleep_for(delay_);
    return inner_->read(offset, out);
  }
  Status write(std::uint64_t offset, std::span<const std::byte> in) override {
    std::this_thread::sleep_for(delay_);
    return inner_->write(offset, in);
  }
  Status readv(std::span<const IoVec> iov) override {
    std::this_thread::sleep_for(delay_);
    return inner_->readv(iov);
  }
  Status writev(std::span<const ConstIoVec> iov) override {
    std::this_thread::sleep_for(delay_);
    return inner_->writev(iov);
  }
  std::uint64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  const std::string& name() const noexcept override { return inner_->name(); }
  const DeviceCounters& counters() const noexcept override {
    return inner_->counters();
  }

 private:
  std::unique_ptr<BlockDevice> inner_;
  std::chrono::microseconds delay_;
};

// End-to-end check of the request-lifecycle profiler against a priced
// device: the known per-op sleep must reappear in the device stage (firm
// lower bound, generous upper bound) and stage shares must telescope to
// the full end-to-end latency.
TEST(Server, ProfilerAttributesPricedDeviceLatency) {
  constexpr auto kDelay = std::chrono::microseconds(2000);
  DeviceArray devices;
  for (std::size_t d = 0; d < 4; ++d) {
    devices.add(std::make_unique<LatencyDevice>(
        std::make_unique<RamDisk>("ram" + std::to_string(d), 4ull << 20),
        kDelay));
  }
  auto formatted = FileSystem::format(devices);
  ASSERT_TRUE(formatted.ok()) << formatted.error().to_string();
  auto fs = std::move(formatted).take();

  obs::Profiler& profiler = obs::Profiler::global();
  profiler.reset();
  profiler.set_enabled(true);
  constexpr std::size_t kOps = 8;
  {
    IoServer server(*fs, devices);
    CreateOptions opts;
    opts.name = "priced";
    opts.organization = Organization::sequential;
    opts.record_bytes = 64;
    opts.capacity_records = 256;
    auto created = fs->create(opts);
    ASSERT_TRUE(created.ok()) << created.error().to_string();
    Client client = must_connect(server);
    auto token = client.open("priced");
    ASSERT_TRUE(token.ok());
    std::vector<std::byte> buf(8 * 64);
    for (std::size_t i = 0; i < kOps; ++i) {
      if (i % 2 == 0) {
        PIO_ASSERT_OK(client.write_records(*token, i * 8, 8, buf));
      } else {
        PIO_ASSERT_OK(client.read_records(*token, (i - 1) * 8, 8, buf));
      }
    }
  }
  profiler.set_enabled(false);

  const obs::ProfileSnapshot snap = profiler.snapshot();
  const obs::ProfileReport report = obs::build_profile_report(snap);
  EXPECT_GE(snap.retired, kOps);

  const obs::StageReport* device = nullptr;
  for (const auto& s : report.stages) {
    if (s.name == "device") device = &s;
  }
  ASSERT_NE(device, nullptr);
  EXPECT_EQ(device->count, kOps);  // control ops never stamp device stages
  // Every data op pays at least one priced sleep inside device service;
  // the upper bound is generous (sleep overshoot, fan-out serialization).
  EXPECT_GE(device->p50_us, 2000.0);
  EXPECT_LT(device->p50_us, 200000.0);

  double share_sum = 0.0;
  for (const auto& s : report.stages) share_sum += s.share;
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  // With one sequential client and a 2 ms priced device, service time
  // dominates admission queueing.  On a CPU-starved host the wait for the
  // device worker (`sched_wait`) can absorb OS scheduling delay and edge out
  // `device`, so accept either service-side stage — but never `queue_wait`.
  EXPECT_TRUE(report.dominant == "device" || report.dominant == "sched_wait")
      << "dominant stage was " << report.dominant;
  profiler.reset();
}

// ----------------------------------------- sharded non-blocking dispatch

// Eight concurrent clients write disjoint regions through the server —
// contiguous extents plus strided views with holes — then the whole file,
// read back THROUGH the server, must be byte-identical to a twin produced
// by serial direct library calls.  Covers the zero-copy write path, the
// zero-copy read path, hole preservation, and shard/steal interleaving
// all at once.
TEST(Server, EightClientsByteIdenticalWithDirect) {
  constexpr std::size_t kClients = 8;
  constexpr std::uint64_t kRegion = 256;
  IoServerOptions options;
  options.dispatchers = 4;
  options.queue_capacity = 64;
  ServerRig rig(options);
  auto served = rig.create("served", kClients * kRegion, 64);
  auto twin = rig.create("twin", kClients * kRegion, 64);

  // Identical pre-existing content in both files: the bytes the strided
  // holes must leave untouched.
  std::vector<std::byte> base(kClients * kRegion * 64);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<std::byte>((i * 11 + 7) & 0xff);
  }
  PIO_ASSERT_OK(served->write_records(0, kClients * kRegion, base));
  PIO_ASSERT_OK(twin->write_records(0, kClients * kRegion, base));

  auto contiguous_payload = [](std::size_t t) {
    std::vector<std::byte> in(128 * 64);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<std::byte>((i * 13 + t * 31 + 1) & 0xff);
    }
    return in;
  };
  auto strided_spec = [](std::size_t t) {
    // end = 128 + 15*8 + 2 = 250 < kRegion: regions stay disjoint.
    return StridedSpec{t * kRegion + 128, 2, 8, 16};
  };
  auto strided_payload = [](std::size_t t) {
    std::vector<std::byte> in(2 * 16 * 64);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<std::byte>((i * 17 + t * 43 + 9) & 0xff);
    }
    return in;
  };

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::connect(*rig.server);
      if (!client.ok()) {
        ++failures;
        return;
      }
      auto token = client->open("served");
      if (!token.ok()) {
        ++failures;
        return;
      }
      const auto contiguous = contiguous_payload(t);
      if (!client->write_records(*token, t * kRegion, 128, contiguous).ok()) {
        ++failures;
      }
      const auto strided = strided_payload(t);
      auto future = client->write_strided_async(*token, strided_spec(t),
                                                strided);
      if (!future.ok() || !future->wait().ok()) ++failures;
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  // Serial replay of the same writes on the twin, via direct calls.
  for (std::size_t t = 0; t < kClients; ++t) {
    PIO_ASSERT_OK(twin->write_records(t * kRegion, 128,
                                      contiguous_payload(t)));
    PIO_ASSERT_OK(write_strided(*twin, strided_spec(t), strided_payload(t)));
  }

  std::vector<std::byte> via_server(base.size());
  std::vector<std::byte> via_direct(base.size());
  Client reader = must_connect(*rig.server);
  auto token = reader.open("served");
  ASSERT_TRUE(token.ok());
  PIO_ASSERT_OK(
      reader.read_records(*token, 0, kClients * kRegion, via_server));
  PIO_ASSERT_OK(twin->read_records(0, kClients * kRegion, via_direct));
  EXPECT_EQ(via_server, via_direct);
}

// Shutdown while requests are still QUEUED on the shards (not just in
// flight at devices): both dispatchers are pinned in synchronous sieved
// execution at a gate, more requests pile up behind them, and shutdown()
// begins.  Draining dispatchers must still empty the shards; every
// accepted future resolves OK.
TEST(Server, DrainCompletesRequestsStillQueuedOnShards) {
  IoServerOptions options;
  options.dispatchers = 2;
  options.queue_capacity = 16;
  options.sieve.path = SievePath::sieve;  // strided ops pin a dispatcher
  ServerRig rig(options, /*gated=*/true, /*num_devices=*/1);
  rig.create("data", 2048, 64);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());

  rig.hold_all();
  std::vector<Future> accepted;
  const StridedSpec pin_spec{0, 2, 8, 16};
  std::vector<std::byte> pin_in(pin_spec.total_records() * 64);
  for (int i = 0; i < 2; ++i) {
    auto f = client.write_strided_async(*token, pin_spec, pin_in);
    ASSERT_TRUE(f.ok()) << f.error().to_string();
    accepted.push_back(std::move(f).take());
  }
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (rig.server->busy_dispatchers() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(rig.server->busy_dispatchers(), 2u);

  std::vector<std::vector<std::byte>> buffers(6, std::vector<std::byte>(64));
  for (std::uint64_t i = 0; i < 6; ++i) {
    auto f = client.write_async(*token, 1024 + i, 1, buffers[i]);
    ASSERT_TRUE(f.ok()) << f.error().to_string();
    accepted.push_back(std::move(f).take());
  }
  EXPECT_GE(rig.server->queue_depth(), 6u);  // stuck behind the dispatchers

  std::thread closer([&] { PIO_EXPECT_OK(rig.server->shutdown()); });
  while (rig.server->state() != IoServer::State::draining) {
    std::this_thread::yield();
  }
  std::vector<std::byte> late(64);
  EXPECT_EQ(client.write_async(*token, 0, 1, late).code(),
            Errc::shutting_down);

  rig.release_all();
  closer.join();
  EXPECT_EQ(rig.server->state(), IoServer::State::stopped);
  EXPECT_EQ(rig.server->inflight(), 0u);
  for (Future& f : accepted) {
    ASSERT_TRUE(f.ready());
    PIO_EXPECT_OK(f.wait());
  }
}

// One hot session cannot idle the pool: with session-affinity sharding all
// of a session's requests land on one shard, so when its home dispatcher
// is pinned at a gate the OTHER dispatcher must steal the next request
// instead of sleeping on its own empty shard.
TEST(Server, WorkStealingPreventsSingleSessionStarvation) {
  IoServerOptions options;
  options.dispatchers = 2;
  options.queue_capacity = 16;
  options.sieve.path = SievePath::sieve;
  ServerRig rig(options, /*gated=*/true, /*num_devices=*/1);
  rig.create("data", 2048, 64);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());

  const std::uint64_t steals_before = rig.server->steals();
  rig.hold_all();
  // Zero-copy path: each payload must stay alive until its future resolves.
  std::vector<std::vector<std::byte>> payloads;
  std::vector<Future> futures;
  for (int i = 0; i < 2; ++i) {
    const StridedSpec spec{static_cast<std::uint64_t>(i) * 1024, 2, 8, 16};
    payloads.emplace_back(spec.total_records() * 64);
    auto f = client.write_strided_async(*token, spec, payloads.back());
    ASSERT_TRUE(f.ok()) << f.error().to_string();
    futures.push_back(std::move(f).take());
  }
  // Both sieved writes came from ONE session (one home shard), yet both
  // dispatchers end up pinned: the second was stolen.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (rig.server->busy_dispatchers() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(rig.server->busy_dispatchers(), 2u);
  EXPECT_GE(rig.server->steals() - steals_before, 1u);

  rig.release_all();
  for (Future& f : futures) PIO_EXPECT_OK(f.wait());
}

// Affinity skew stress for the shard rings: every queued request from one
// session lands on ONE shard, so its ring must absorb the whole global
// queue_capacity, and the capacity check still rejects the first request
// over budget with Errc::overloaded.
TEST(Server, ShardRingAbsorbsFullQueueCapacityUnderAffinitySkew) {
  IoServerOptions options;
  options.dispatchers = 2;
  options.queue_capacity = 2;
  options.max_inflight_per_session = 16;
  options.sieve.path = SievePath::sieve;
  ServerRig rig(options, /*gated=*/true, /*num_devices=*/1);
  rig.create("data", 2048, 64);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());

  rig.hold_all();
  const StridedSpec spec{0, 2, 8, 16};
  std::vector<std::byte> in(spec.total_records() * 64);
  std::vector<Future> futures;
  // Two sieved writes pin both dispatchers (queue empties)...
  for (int i = 0; i < 2; ++i) {
    auto f = client.write_strided_async(*token, spec, in);
    ASSERT_TRUE(f.ok()) << f.error().to_string();
    futures.push_back(std::move(f).take());
  }
  auto deadline = std::chrono::steady_clock::now() + 5s;
  while ((rig.server->busy_dispatchers() < 2 ||
          rig.server->queue_depth() != 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(rig.server->busy_dispatchers(), 2u);
  ASSERT_EQ(rig.server->queue_depth(), 0u);
  // ...two more fill the entire global budget on the session's single home
  // shard (the ring is sized for that)...
  for (int i = 0; i < 2; ++i) {
    auto f = client.write_strided_async(*token, spec, in);
    ASSERT_TRUE(f.ok()) << f.error().to_string();
    futures.push_back(std::move(f).take());
  }
  EXPECT_EQ(rig.server->queue_depth(), 2u);
  // ...and the next submit is over budget.
  auto rejected = client.write_strided_async(*token, spec, in);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), Errc::overloaded);

  rig.release_all();
  for (Future& f : futures) PIO_EXPECT_OK(f.wait());
  // The rejection corrupted nothing.
  std::vector<std::byte> out(64);
  PIO_EXPECT_OK(client.read_records(*token, 0, 1, out));
}

// Pinned regression for admission latency: while every dispatcher is
// pinned mid-execution, submit() must still do CONSTANT work — exactly
// the two profiling stamps of the admission path (accepted, queued) per
// request, never a dispatch-side stamp and never a wait.  An admission
// path that blocked behind a busy dispatcher, or did per-request dispatch
// work inline, would read the injected counting clock extra times.
TEST(Server, AdmissionDoesConstantWorkWhileDispatchersArePinned) {
  IoServerOptions options;
  options.dispatchers = 2;
  options.queue_capacity = 32;
  options.sieve.path = SievePath::sieve;
  ServerRig rig(options, /*gated=*/true, /*num_devices=*/1);
  rig.create("data", 2048, 64);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());

  obs::Profiler& profiler = obs::Profiler::global();
  profiler.reset();
  std::atomic<std::uint64_t> clock_calls{0};
  profiler.set_clock([&clock_calls] {
    return 1.0 + static_cast<double>(
                     clock_calls.fetch_add(1, std::memory_order_relaxed));
  });
  profiler.set_enabled(true);

  rig.hold_all();
  std::vector<Future> futures;
  const StridedSpec spec{0, 2, 8, 16};
  std::vector<std::byte> pin_in(spec.total_records() * 64);
  for (int i = 0; i < 2; ++i) {
    auto f = client.write_strided_async(*token, spec, pin_in);
    ASSERT_TRUE(f.ok()) << f.error().to_string();
    futures.push_back(std::move(f).take());
  }
  // Wait until both dispatchers are pinned at the gate and the stamp
  // stream has gone quiet (their in-flight sub-ops stop reading the clock).
  auto deadline = std::chrono::steady_clock::now() + 5s;
  while (rig.server->busy_dispatchers() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(rig.server->busy_dispatchers(), 2u);
  std::uint64_t settled = clock_calls.load();
  for (;;) {
    std::this_thread::sleep_for(10ms);
    const std::uint64_t now = clock_calls.load();
    if (now == settled) break;
    settled = now;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
  }

  constexpr std::uint64_t kSubmits = 8;
  std::vector<std::vector<std::byte>> buffers(kSubmits,
                                              std::vector<std::byte>(64));
  const std::uint64_t before = clock_calls.load();
  for (std::uint64_t i = 0; i < kSubmits; ++i) {
    auto f = client.write_async(*token, 1024 + i, 1, buffers[i]);
    ASSERT_TRUE(f.ok()) << f.error().to_string();
    futures.push_back(std::move(f).take());
  }
  // Two stamps per accepted request — accepted and queued — and nothing
  // else: admission finished without touching dispatch.
  EXPECT_EQ(clock_calls.load() - before, 2 * kSubmits);

  rig.release_all();
  for (Future& f : futures) PIO_EXPECT_OK(f.wait());
  // Futures resolve BEFORE the final `completed` stamp, so quiesce the
  // server (shutdown waits for full retirement) before swapping the
  // injected clock back out from under the stamping threads.
  PIO_EXPECT_OK(rig.server->shutdown());
  profiler.set_enabled(false);
  profiler.set_clock(nullptr);
  profiler.reset();
}

// Zero-copy proof for the covering-extent read path: steady-state reads
// through the server perform NO payload-sized allocation — the client's
// span rides through planning into the devices' vectored reads.  (Sieving
// is forced OFF; sieving is the one path that legitimately stages.)
TEST(Server, CoveringExtentReadsDoNotStage) {
  IoServerOptions options;
  options.sieve.path = SievePath::direct;
  ServerRig rig(options);
  auto direct = rig.create("data", 1024, 512);
  Client client = must_connect(*rig.server);
  auto token = client.open("data");
  ASSERT_TRUE(token.ok());

  std::vector<std::byte> in(128 * 512);  // 64 KiB, well over the threshold
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::byte>((i * 7 + 3) & 0xff);
  }
  PIO_ASSERT_OK(client.write_records(*token, 0, 128, in));

  // Warm-up: grow the item pool, scheduler structures, session maps.
  std::vector<std::byte> out(in.size());
  std::vector<std::byte> strided_out(2 * 16 * 512);
  const StridedSpec spec{0, 2, 8, 16};
  PIO_ASSERT_OK(client.read_records(*token, 0, 128, out));
  {
    auto f = client.read_strided_async(*token, spec, strided_out);
    ASSERT_TRUE(f.ok());
    PIO_ASSERT_OK(f->wait());
  }

  const std::uint64_t large_before =
      g_large_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 8; ++round) {
    PIO_ASSERT_OK(client.read_records(*token, 0, 128, out));
    auto f = client.read_strided_async(*token, spec, strided_out);
    ASSERT_TRUE(f.ok());
    PIO_ASSERT_OK(f->wait());
  }
  EXPECT_EQ(g_large_allocations.load(std::memory_order_relaxed) -
                large_before,
            0u);

  // And the bytes are right: zero-copy did not trade correctness.
  std::vector<std::byte> expect_direct(out.size());
  PIO_ASSERT_OK(direct->read_records(0, 128, expect_direct));
  EXPECT_EQ(out, expect_direct);
}

}  // namespace
}  // namespace pio::server
