// Cross-substrate validation: the functional data path (RamDisk arrays +
// handles) and the virtual-time simulator (SimDisk arrays + pattern_ops)
// must perform the SAME device I/O — byte-for-byte per device — when
// driven by the same organization, layout, and access pattern.  This is
// the license for reading the benchmarks' simulated results as statements
// about the real implementation.
#include <gtest/gtest.h>

#include "core/handles.hpp"
#include "device/ram_disk.hpp"
#include "device/sim_disk.hpp"
#include "test_helpers.hpp"
#include "workload/sim_process.hpp"

namespace pio {
namespace {

struct CrossCase {
  std::string name;
  Organization org;
  LayoutKind layout;
  std::uint32_t partitions;
  std::uint32_t records_per_block;
  std::size_t devices;
  std::uint64_t capacity;
};

std::vector<CrossCase> cross_cases() {
  return {
      {"S_striped", Organization::sequential, LayoutKind::striped, 1, 1, 4, 192},
      {"PS_blocked", Organization::partitioned, LayoutKind::blocked, 4, 1, 4, 192},
      {"PS_blocked_shared", Organization::partitioned, LayoutKind::blocked, 6, 1, 3, 192},
      {"IS_interleaved", Organization::interleaved, LayoutKind::interleaved, 4, 4, 4, 192},
      {"IS_decl", Organization::interleaved, LayoutKind::declustered, 4, 4, 4, 192},
      {"S_1dev", Organization::sequential, LayoutKind::striped, 1, 1, 1, 64},
  };
}

class CrossSubstrate : public ::testing::TestWithParam<CrossCase> {};

INSTANTIATE_TEST_SUITE_P(AllConfigs, CrossSubstrate,
                         ::testing::ValuesIn(cross_cases()),
                         [](const ::testing::TestParamInfo<CrossCase>& info) {
                           return info.param.name;
                         });

TEST_P(CrossSubstrate, PerDeviceBytesAgree) {
  const CrossCase& c = GetParam();
  constexpr std::uint32_t kRecordBytes = 512;

  // Functional run: every process drains its handle; count device reads.
  DeviceArray devices = make_ram_array(c.devices, 4 << 20);
  FileMeta meta;
  meta.name = c.name;
  meta.organization = c.org;
  meta.layout_kind = c.layout;
  meta.record_bytes = kRecordBytes;
  meta.records_per_block = c.records_per_block;
  meta.partitions = c.partitions;
  meta.capacity_records = c.capacity;
  meta.stripe_unit = 1024;
  auto file = std::make_shared<ParallelFile>(
      meta, devices, std::vector<std::uint64_t>(c.devices, 0));
  pio::testing::fill_stamped(*file, c.capacity, 1);

  std::vector<std::uint64_t> functional_bytes(c.devices, 0);
  {
    std::vector<std::uint64_t> before(c.devices);
    for (std::size_t d = 0; d < c.devices; ++d) {
      before[d] = devices[d].counters().bytes_read.load();
    }
    const std::uint32_t nproc = c.partitions;
    std::vector<std::byte> rec(kRecordBytes);
    for (std::uint32_t p = 0; p < nproc; ++p) {
      auto h = open_process_handle(file, p);
      ASSERT_TRUE(h.ok());
      while ((*h)->read_next(rec).ok()) {
      }
    }
    for (std::size_t d = 0; d < c.devices; ++d) {
      functional_bytes[d] = devices[d].counters().bytes_read.load() - before[d];
    }
  }

  // Simulated run: the same patterns replayed through pattern_ops on the
  // same layout math against SimDisks.
  sim::Engine eng;
  SimDiskArray disks(eng, c.devices);
  const auto layout = make_layout(meta, c.devices);
  std::vector<std::vector<SimOp>> ops;
  for (std::uint32_t p = 0; p < c.partitions; ++p) {
    Pattern pattern = [&] {
      switch (c.org) {
        case Organization::partitioned:
          return Pattern::partitioned(meta.partition_capacity_records(), p);
        case Organization::interleaved:
          return Pattern::interleaved(meta.records_per_block, c.partitions, p);
        default:
          return Pattern::sequential();
      }
    }();
    ops.push_back(pattern_ops(pattern, pattern.visits_below(c.capacity),
                              kRecordBytes, /*records_per_transfer=*/1, 0.0));
  }
  run_processes(eng, disks, *layout, std::move(ops));

  for (std::size_t d = 0; d < c.devices; ++d) {
    EXPECT_EQ(disks[d].bytes_transferred(), functional_bytes[d])
        << "device " << d << ": simulator and functional path disagree";
  }
}

TEST_P(CrossSubstrate, TotalBytesEqualFileContent) {
  const CrossCase& c = GetParam();
  constexpr std::uint32_t kRecordBytes = 512;
  sim::Engine eng;
  SimDiskArray disks(eng, c.devices);
  FileMeta meta;
  meta.organization = c.org;
  meta.layout_kind = c.layout;
  meta.record_bytes = kRecordBytes;
  meta.records_per_block = c.records_per_block;
  meta.partitions = c.partitions;
  meta.capacity_records = c.capacity;
  meta.stripe_unit = 1024;
  const auto layout = make_layout(meta, c.devices);
  std::vector<std::vector<SimOp>> ops;
  for (std::uint32_t p = 0; p < c.partitions; ++p) {
    Pattern pattern = c.org == Organization::partitioned
        ? Pattern::partitioned(meta.partition_capacity_records(), p)
        : (c.org == Organization::interleaved
               ? Pattern::interleaved(meta.records_per_block, c.partitions, p)
               : Pattern::sequential());
    ops.push_back(pattern_ops(pattern, pattern.visits_below(c.capacity),
                              kRecordBytes, 8, 0.0));
  }
  run_processes(eng, disks, *layout, std::move(ops));
  EXPECT_EQ(disks.total_bytes(), c.capacity * kRecordBytes);
}

}  // namespace
}  // namespace pio
