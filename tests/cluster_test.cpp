// Tests for the cluster subsystem (src/cluster/): distribution property
// tests (forward/inverse round trip, full coverage, no overlap, awkward
// sizes), byte-identical cluster-vs-single-server reads and writes
// including strided holes, router windowing under tiny admission bounds,
// drain semantics with in-flight cross-server requests, and a chaos case
// that kills one data server's device mid-workload and rebuilds it online
// through that server's ResilientArray.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace pio;
using namespace pio::cluster;

std::byte pattern(std::uint64_t i) {
  return static_cast<std::byte>((i * 131 + 7) & 0xff);
}

double metric_value(const std::string& name) {
  for (const obs::MetricSample& s : obs::MetricsRegistry::global().snapshot()) {
    if (s.name == name) return s.value;
  }
  return 0.0;
}

ClusterOptions small_cluster(std::size_t servers) {
  ClusterOptions options;
  options.data_servers = servers;
  options.data_server.devices = 2;
  options.data_server.device_bytes = 4ull << 20;
  return options;
}

// ---------------------------------------------------------- distribution

TEST(Distribution, RoundTripCoverageAndFragmentSizes) {
  const std::uint64_t capacities[] = {1, 7, 64, 97, 997, 1000};
  const std::uint32_t server_counts[] = {1, 2, 3, 5, 8};
  const std::uint64_t chunks[] = {1, 3, 64};
  std::vector<DistributionSpec> specs;
  for (std::uint32_t s : server_counts) {
    specs.push_back({DistributionKind::block, s, 0});
    specs.push_back({DistributionKind::cyclic, s, 0});
    for (std::uint64_t c : chunks) {
      specs.push_back({DistributionKind::strided, s, c});
    }
  }
  for (const DistributionSpec& spec : specs) {
    for (std::uint64_t capacity : capacities) {
      const Distribution dist(spec, capacity);
      SCOPED_TRACE(std::string(distribution_kind_name(spec.kind)) +
                   " servers=" + std::to_string(spec.servers) +
                   " chunk=" + std::to_string(dist.chunk_records()) +
                   " capacity=" + std::to_string(capacity));

      // Fragment sizes sum to the capacity.
      std::uint64_t total = 0;
      for (std::uint32_t s = 0; s < spec.servers; ++s) {
        total += dist.server_records(s);
      }
      EXPECT_EQ(total, capacity);

      // Forward/inverse round trip, in-bounds locals, exactly-once
      // coverage of every fragment slot.
      std::vector<std::vector<char>> seen(spec.servers);
      for (std::uint32_t s = 0; s < spec.servers; ++s) {
        seen[s].assign(static_cast<std::size_t>(dist.server_records(s)), 0);
      }
      for (std::uint64_t r = 0; r < capacity; ++r) {
        const auto [s, local] = dist.locate(r);
        ASSERT_LT(s, spec.servers);
        ASSERT_LT(local, dist.server_records(s));
        EXPECT_EQ(dist.logical(s, local), r);
        ASSERT_EQ(seen[s][static_cast<std::size_t>(local)], 0)
            << "record " << r << " collides on server " << s;
        seen[s][static_cast<std::size_t>(local)] = 1;
      }
      for (std::uint32_t s = 0; s < spec.servers; ++s) {
        for (char c : seen[s]) EXPECT_EQ(c, 1);
      }
    }
  }
}

TEST(Distribution, MapRangeMatchesLocateAndStaysContiguousPerServer) {
  const DistributionSpec specs[] = {
      {DistributionKind::block, 3, 0},
      {DistributionKind::cyclic, 4, 0},
      {DistributionKind::strided, 3, 5},
      {DistributionKind::strided, 1, 7},
  };
  const std::uint64_t capacity = 211;  // prime: every boundary is awkward
  for (const DistributionSpec& spec : specs) {
    const Distribution dist(spec, capacity);
    for (std::uint64_t first = 0; first < capacity; first += 13) {
      for (std::uint64_t count : {std::uint64_t{1}, std::uint64_t{17},
                                  capacity - first}) {
        if (first + count > capacity) continue;
        std::vector<DistRun> runs;
        dist.map_range(first, count, runs);
        // Runs partition [first, first + count) in logical order, agree
        // with locate(), and form ONE contiguous local interval per
        // server (the property the router's fan-out relies on).
        std::uint64_t next = first;
        std::vector<std::pair<std::uint64_t, std::uint64_t>> interval(
            spec.servers, {UINT64_MAX, 0});
        for (const DistRun& run : runs) {
          EXPECT_EQ(run.logical_first, next);
          for (std::uint64_t i = 0; i < run.records; ++i) {
            const auto [s, local] = dist.locate(run.logical_first + i);
            ASSERT_EQ(s, run.server);
            ASSERT_EQ(local, run.local_first + i);
          }
          auto& [lo, hi] = interval[run.server];
          if (lo == UINT64_MAX) {
            lo = run.local_first;
            hi = run.local_first + run.records;
          } else {
            ASSERT_EQ(hi, run.local_first) << "local interval tore";
            hi += run.records;
          }
          next += run.records;
        }
        EXPECT_EQ(next, first + count);
      }
    }
  }
}

TEST(Distribution, ParseNames) {
  EXPECT_EQ(parse_distribution_kind("block"), DistributionKind::block);
  EXPECT_EQ(parse_distribution_kind("cyclic"), DistributionKind::cyclic);
  EXPECT_EQ(parse_distribution_kind("strided"), DistributionKind::strided);
  EXPECT_FALSE(parse_distribution_kind("bogus").has_value());
  EXPECT_EQ(distribution_kind_name(DistributionKind::block), "block");
}

// ------------------------------------------------------------ validation

TEST(ClusterValidation, RejectsZeroedOptions) {
  EXPECT_EQ(Cluster::create(ClusterOptions{0, {}}).code(),
            Errc::invalid_argument);

  server::IoServerOptions no_dispatchers;
  no_dispatchers.dispatchers = 0;
  EXPECT_EQ(server::validate(no_dispatchers).code(), Errc::invalid_argument);
  server::IoServerOptions no_queue;
  no_queue.queue_capacity = 0;
  EXPECT_EQ(server::validate(no_queue).code(), Errc::invalid_argument);
  server::IoServerOptions no_inflight;
  no_inflight.max_inflight_per_session = 0;
  EXPECT_EQ(server::validate(no_inflight).code(), Errc::invalid_argument);
  EXPECT_TRUE(server::validate(server::IoServerOptions{}).ok());

  // The zeroed knobs are rejected end-to-end through the factories.
  ClusterOptions bad = small_cluster(1);
  bad.data_server.server.dispatchers = 0;
  EXPECT_EQ(Cluster::create(bad).code(), Errc::invalid_argument);
  bad = small_cluster(1);
  bad.data_server.server.queue_capacity = 0;
  EXPECT_EQ(Cluster::create(bad).code(), Errc::invalid_argument);
  bad = small_cluster(1);
  bad.data_server.devices = 0;
  EXPECT_EQ(Cluster::create(bad).code(), Errc::invalid_argument);
  bad = small_cluster(1);
  bad.data_server.resilient = true;
  bad.data_server.devices = 1;
  EXPECT_EQ(Cluster::create(bad).code(), Errc::invalid_argument);
}

TEST(ClusterValidation, MetadataRejectsBadCreates) {
  auto cluster = Cluster::create(small_cluster(2));
  ASSERT_TRUE(cluster.ok());
  MetadataService& meta = (*cluster)->metadata();
  EXPECT_EQ(meta.create({"", 64, 10, {}}).code(), Errc::invalid_argument);
  EXPECT_EQ(meta.create({"f", 0, 10, {}}).code(), Errc::invalid_argument);
  EXPECT_EQ(meta.create({"f", 64, 0, {}}).code(), Errc::invalid_argument);
  DistributionSpec too_wide{DistributionKind::cyclic, 9, 0};
  EXPECT_EQ(meta.create({"f", 64, 10, too_wide}).code(),
            Errc::invalid_argument);
}

// ------------------------------------------------------- metadata plane

TEST(MetadataService, LifecycleAndHandles) {
  auto cluster = Cluster::create(small_cluster(3));
  ASSERT_TRUE(cluster.ok());
  MetadataService& meta = (*cluster)->metadata();

  ClusterCreateOptions create;
  create.name = "data";
  create.record_bytes = 96;
  create.capacity_records = 500;
  create.distribution = {DistributionKind::strided, 0, 16};
  auto created = meta.create(create);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created->distribution.servers, 3u);  // 0 resolved to "all"
  EXPECT_EQ(meta.create(create).code(), Errc::already_exists);

  // Fragments exist on every server, sized to their share.
  std::uint64_t fragment_records = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    auto frag = (*cluster)->data_server(s).fs().stat("data");
    ASSERT_TRUE(frag.has_value());
    fragment_records += frag->capacity_records;
  }
  EXPECT_EQ(fragment_records, 500u);

  ASSERT_TRUE(meta.stat("data").ok());
  EXPECT_EQ(meta.list().size(), 1u);
  auto opened = meta.open("data");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(meta.open_handles(), 1u);
  EXPECT_EQ(meta.remove("data").code(), Errc::busy);  // handle still open
  EXPECT_TRUE(meta.close(opened->first).ok());
  EXPECT_TRUE(meta.remove("data").ok());
  EXPECT_EQ(meta.stat("data").code(), Errc::not_found);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_FALSE((*cluster)->data_server(s).fs().stat("data").has_value());
  }
}

// --------------------------------------------- byte-identical global view

struct Model {
  std::uint32_t record_bytes;
  std::vector<std::byte> bytes;

  explicit Model(std::uint32_t rb, std::uint64_t records)
      : record_bytes(rb), bytes(rb * records) {}

  void write(std::uint64_t first, std::uint64_t count,
             const std::byte* data) {
    std::memcpy(bytes.data() + first * record_bytes, data,
                count * record_bytes);
  }
  void write_strided(const StridedSpec& spec, const std::byte* view) {
    for (std::uint64_t g = 0; g < spec.count; ++g) {
      write(spec.start_record + g * spec.stride_records, spec.block_records,
            view + g * spec.block_records * record_bytes);
    }
  }
  std::vector<std::byte> read(std::uint64_t first, std::uint64_t count) const {
    return {bytes.begin() + static_cast<std::ptrdiff_t>(first * record_bytes),
            bytes.begin() +
                static_cast<std::ptrdiff_t>((first + count) * record_bytes)};
  }
  std::vector<std::byte> read_strided(const StridedSpec& spec) const {
    std::vector<std::byte> view;
    for (std::uint64_t g = 0; g < spec.count; ++g) {
      auto block = read(spec.start_record + g * spec.stride_records,
                        spec.block_records);
      view.insert(view.end(), block.begin(), block.end());
    }
    return view;
  }
};

/// Drive an identical randomized workload (contiguous + strided writes
/// and reads, including never-written holes) against the model and a
/// cluster of `servers` data servers; every read must match the model —
/// which by construction makes every cluster layout byte-identical to
/// the single-server (servers == 1) global view.
void run_workload(std::size_t servers, const DistributionSpec& spec,
                  std::uint32_t record_bytes) {
  SCOPED_TRACE(std::string(distribution_kind_name(spec.kind)) + " x" +
               std::to_string(servers) + " rb=" +
               std::to_string(record_bytes));
  constexpr std::uint64_t kRecords = 613;  // prime: awkward everywhere
  auto cluster = Cluster::create(small_cluster(servers));
  ASSERT_TRUE(cluster.ok());
  ClusterCreateOptions create;
  create.name = "w";
  create.record_bytes = record_bytes;
  create.capacity_records = kRecords;
  create.distribution = spec;
  ASSERT_TRUE((*cluster)->metadata().create(create).ok());

  ClusterClientOptions copts;
  copts.max_subrequest_bytes = 64 * record_bytes;  // force windowing
  auto client = (*cluster)->connect(copts);
  ASSERT_TRUE(client.ok());
  auto token = client->open("w");
  ASSERT_TRUE(token.ok());

  Model model(record_bytes, kRecords);
  std::uint64_t salt = 0;

  auto fill = [&](std::vector<std::byte>& buf) {
    ++salt;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = pattern(salt * 7919 + i);
    }
  };
  auto check_read = [&](std::uint64_t first, std::uint64_t count) {
    std::vector<std::byte> got(count * record_bytes);
    ASSERT_TRUE(client->read_records(*token, first, count, got).ok());
    EXPECT_EQ(got, model.read(first, count))
        << "read [" << first << ", +" << count << ")";
  };

  // Contiguous writes at awkward offsets; interleave reads (covering
  // written, unwritten-hole, and mixed ranges).
  const std::pair<std::uint64_t, std::uint64_t> writes[] = {
      {0, 1},  {1, 64}, {100, 129}, {350, 263}, {609, 4}, {64, 36}};
  std::vector<std::byte> buf;
  for (const auto& [first, count] : writes) {
    buf.resize(count * record_bytes);
    fill(buf);
    ASSERT_TRUE(client->write_records(*token, first, count, buf).ok());
    model.write(first, count, buf.data());
    check_read(first, count);
  }
  check_read(0, kRecords);       // full file, incl. the [229, 350) hole
  check_read(200, 200);          // straddles written + hole
  check_read(229, 100);          // pure hole: must read back zeroes

  // Strided views: write a fine interleave, read it back both strided
  // and flat (hole records inside the covering extent must survive).
  const StridedSpec strided_writes[] = {
      {3, 2, 7, 41},    // fine interleave
      {10, 5, 11, 30},  // wider blocks, prime stride
      {0, 1, 2, 100},   // every other record
  };
  for (const StridedSpec& spec_w : strided_writes) {
    buf.resize(spec_w.total_records() * record_bytes);
    fill(buf);
    ASSERT_TRUE(client->write_strided(*token, spec_w, buf).ok());
    model.write_strided(spec_w, buf.data());

    std::vector<std::byte> got(spec_w.total_records() * record_bytes);
    ASSERT_TRUE(client->read_strided(*token, spec_w, got).ok());
    EXPECT_EQ(got, model.read_strided(spec_w));
    check_read(spec_w.start_record,
               spec_w.end_record() - spec_w.start_record);
  }
  check_read(0, kRecords);

  // Out-of-range and malformed requests are rejected, not misrouted.
  std::vector<std::byte> tiny(record_bytes);
  EXPECT_EQ(client->read_records(*token, kRecords, 1, tiny).code(),
            Errc::out_of_range);
  EXPECT_EQ(client->write_records(*token, kRecords - 1, 2, tiny).code(),
            Errc::out_of_range);  // bounds are checked before buffer size
  EXPECT_EQ(client->write_records(*token, 0, 2, tiny).code(),
            Errc::invalid_argument);  // buffer too small for 2 records
  StridedSpec bad{0, 4, 2, 2};       // stride < block
  EXPECT_EQ(client->read_strided(*token, bad, tiny).code(),
            Errc::invalid_argument);

  EXPECT_TRUE(client->close(*token).ok());
}

TEST(ClusterClient, ByteIdenticalAcrossLayoutsAndServerCounts) {
  for (std::size_t servers : {std::size_t{1}, std::size_t{3}}) {
    run_workload(servers, {DistributionKind::block, 0, 0}, 96);
    run_workload(servers, {DistributionKind::cyclic, 0, 0}, 96);
    run_workload(servers, {DistributionKind::strided, 0, 13}, 96);
  }
  // Awkward record size, partial-width distribution (2 of 3 servers).
  run_workload(3, {DistributionKind::strided, 2, 5}, 40);
}

TEST(ClusterClient, WindowedFanOutSurvivesTinyAdmissionBounds) {
  // Tiny queues + tiny per-session allowances: the router must absorb
  // Errc::overloaded by waiting on its own oldest sub-request.
  ClusterOptions options = small_cluster(3);
  options.data_server.server.queue_capacity = 2;
  options.data_server.server.max_inflight_per_session = 2;
  options.data_server.server.dispatchers = 1;
  auto cluster = Cluster::create(options);
  ASSERT_TRUE(cluster.ok());

  constexpr std::uint32_t kRecordBytes = 128;
  constexpr std::uint64_t kRecords = 1024;
  ClusterCreateOptions create;
  create.name = "windowed";
  create.record_bytes = kRecordBytes;
  create.capacity_records = kRecords;
  create.distribution = {DistributionKind::strided, 0, 4};
  ASSERT_TRUE((*cluster)->metadata().create(create).ok());

  ClusterClientOptions copts;
  copts.max_subrequest_bytes = 8 * kRecordBytes;  // >= 42 windows/server
  copts.window_per_server = 2;
  auto client = (*cluster)->connect(copts);
  ASSERT_TRUE(client.ok());
  auto token = client->open("windowed");
  ASSERT_TRUE(token.ok());

  const double subs0 = metric_value("cluster.subrequests");
  std::vector<std::byte> out(kRecords * kRecordBytes);
  std::vector<std::byte> in(kRecords * kRecordBytes);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = pattern(i);
  ASSERT_TRUE(client->write_records(*token, 0, kRecords, in).ok());
  ASSERT_TRUE(client->read_records(*token, 0, kRecords, out).ok());
  EXPECT_EQ(in, out);
  EXPECT_GE(metric_value("cluster.subrequests") - subs0, 2.0 * 3 * 42);
}

// ------------------------------------------------------------------ drain

TEST(Cluster, DrainCompletesInFlightCrossServerRequests) {
  ClusterOptions options = small_cluster(3);
  options.data_server.device_op_cost_us = 1500;  // keep requests in flight
  auto cluster = Cluster::create(options);
  ASSERT_TRUE(cluster.ok());

  constexpr std::uint32_t kRecordBytes = 256;
  constexpr std::uint64_t kRecords = 960;
  ClusterCreateOptions create;
  create.name = "drain";
  create.record_bytes = kRecordBytes;
  create.capacity_records = kRecords;
  create.distribution = {DistributionKind::strided, 0, 8};
  ASSERT_TRUE((*cluster)->metadata().create(create).ok());

  constexpr std::size_t kThreads = 3;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> unexpected{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kThreads; ++c) {
    threads.emplace_back([&, c] {
      auto client = (*cluster)->connect();
      if (!client.ok()) return;
      auto token = client->open("drain");
      if (!token.ok()) return;
      std::vector<std::byte> buf(40 * kRecordBytes);
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = pattern(c + i);
      for (std::uint64_t op = 0;; ++op) {
        // Each op spans several servers (40 records over chunk 8).
        const std::uint64_t first = (c * 320 + op * 40) % (kRecords - 40);
        Status st = client->write_records(*token, first, 40, buf);
        if (st.ok()) {
          completed.fetch_add(1);
          continue;
        }
        if (st.code() == Errc::shutting_down) {
          rejected.fetch_add(1);
        } else {
          unexpected.fetch_add(1);
        }
        break;
      }
      // After drain, submits keep failing shutting_down — never hang.
      if (client->write_records(*token, 0, 40, buf).code() !=
          Errc::shutting_down) {
        unexpected.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE((*cluster)->shutdown().ok());
  for (auto& t : threads) t.join();

  EXPECT_GT(completed.load(), 0u);   // traffic flowed before the drain
  EXPECT_EQ(rejected.load(), kThreads);
  EXPECT_EQ(unexpected.load(), 0u);
  for (std::size_t s = 0; s < (*cluster)->size(); ++s) {
    EXPECT_EQ((*cluster)->data_server(s).server().inflight(), 0u);
  }
  EXPECT_TRUE((*cluster)->shutdown().ok());  // idempotent
}

// ------------------------------------------------------------------ chaos

TEST(Cluster, DeviceKillMidWorkloadRebuildsOnlinePerServer) {
  ClusterOptions options = small_cluster(2);
  options.data_server.devices = 3;
  options.data_server.resilient = true;
  options.data_server.resilience.retry.base_backoff_us = 0;
  options.data_server.resilience.retry.max_backoff_us = 0;
  options.data_server.resilience.health.open_ops = 4;
  auto cluster = Cluster::create(options);
  ASSERT_TRUE(cluster.ok());

  constexpr std::uint32_t kRecordBytes = 512;
  constexpr std::uint64_t kRecords = 1200;
  ClusterCreateOptions create;
  create.name = "chaos";
  create.record_bytes = kRecordBytes;
  create.capacity_records = kRecords;
  create.distribution = {DistributionKind::strided, 0, 16};
  ASSERT_TRUE((*cluster)->metadata().create(create).ok());

  auto client = (*cluster)->connect();
  ASSERT_TRUE(client.ok());
  auto token = client->open("chaos");
  ASSERT_TRUE(token.ok());

  Model model(kRecordBytes, kRecords);
  const double degraded0 = metric_value("reliability.degraded_reads");

  std::uint64_t salt = 0;
  auto traffic = [&](std::uint64_t ops) {
    std::vector<std::byte> buf;
    for (std::uint64_t op = 0; op < ops; ++op) {
      const std::uint64_t first = (op * 97) % (kRecords - 48);
      const std::uint64_t count = 8 + (op % 5) * 10;
      buf.resize(count * kRecordBytes);
      ++salt;
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = pattern(salt * 7919 + i);
      }
      if (op % 3 != 2) {
        ASSERT_TRUE(client->write_records(*token, first, count, buf).ok());
        model.write(first, count, buf.data());
      } else {
        std::vector<std::byte> got(count * kRecordBytes);
        ASSERT_TRUE(client->read_records(*token, first, count, got).ok());
        ASSERT_EQ(got, model.read(first, count));
      }
    }
  };

  traffic(60);  // seed data on every server

  // Kill one device on data server 0, mid-workload.
  DataServer& victim_server = (*cluster)->data_server(0);
  FaultyDevice* victim = victim_server.faulty(1);
  ASSERT_NE(victim, nullptr);
  victim->fail_now();
  traffic(90);  // cluster keeps serving; server 0 runs degraded
  // A full global read sweeps every stripe unit on every server — the
  // victim's share must be reconstructed from parity (a narrow random
  // workload can alias with the striping and miss the dead device).
  std::vector<std::byte> sweep(kRecords * kRecordBytes);
  ASSERT_TRUE(client->read_records(*token, 0, kRecords, sweep).ok());
  EXPECT_EQ(sweep, model.bytes);
  EXPECT_GT(metric_value("reliability.degraded_reads"), degraded0);

  // Online rebuild through THAT server's ResilientArray while traffic
  // continues on the whole cluster.
  RebuildOptions rebuild;
  rebuild.chunk_bytes = 64 * 1024;
  rebuild.on_complete = [victim] { victim->repair(); };
  ASSERT_TRUE(victim_server.resilient()
                  ->start_rebuild(1, victim->inner(), rebuild)
                  .ok());
  traffic(90);
  ASSERT_TRUE(victim_server.resilient()->wait_rebuild().ok());
  EXPECT_FALSE(victim->failed());
  EXPECT_FALSE(victim_server.resilient()->stale(1));

  // Full global view must match the model byte-for-byte after repair.
  std::vector<std::byte> got(kRecords * kRecordBytes);
  ASSERT_TRUE(client->read_records(*token, 0, kRecords, got).ok());
  EXPECT_EQ(got, model.bytes);

  EXPECT_TRUE(client->close(*token).ok());
  EXPECT_TRUE((*cluster)->shutdown().ok());
}

}  // namespace
