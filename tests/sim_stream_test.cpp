// Tests for the virtual-time buffered stream models (§4 buffering claims)
// and the workload sim-process runner.
#include <gtest/gtest.h>

#include "buffer/sim_stream.hpp"
#include "device/sim_disk.hpp"
#include "workload/sim_process.hpp"

namespace pio {
namespace {

constexpr std::uint64_t kChunk = 24 * 1024;  // one track

double run_read_stream(std::uint64_t chunks, std::size_t buffers,
                       double compute, bool overlap) {
  sim::Engine eng;
  SimDiskArray disks(eng, 1);
  double elapsed = 0;
  BufferedStreamConfig cfg;
  cfg.chunks = chunks;
  cfg.buffers = buffers;
  cfg.compute_per_chunk_s = compute;
  cfg.overlap = overlap;
  eng.spawn(buffered_read_stream(
      eng,
      [&](std::uint64_t i) { return disks[0].io(i * kChunk, kChunk); }, cfg,
      &elapsed));
  eng.run();
  return elapsed;
}

TEST(BufferedReadStream, SynchronousIsSumOfPhases) {
  // No overlap: elapsed ~ sum(io) + sum(compute).
  const double no_compute = run_read_stream(20, 1, 0.0, false);
  const double with_compute = run_read_stream(20, 1, 0.010, false);
  EXPECT_NEAR(with_compute - no_compute, 20 * 0.010, 1e-6);
}

TEST(BufferedReadStream, DoubleBufferingOverlapsComputeWithIo) {
  const double compute = 0.015;  // comparable to one chunk's service time
  const double sync = run_read_stream(30, 1, compute, false);
  const double dbl = run_read_stream(30, 2, compute, true);
  // Overlap must help substantially: the paper's multiple-buffering claim.
  EXPECT_LT(dbl, sync * 0.75);
}

TEST(BufferedReadStream, ElapsedBoundedBelowByBothPhases) {
  const double compute = 0.015;
  const double io_only = run_read_stream(30, 1, 0.0, false);
  const double overlapped = run_read_stream(30, 4, compute, true);
  EXPECT_GE(overlapped, io_only * 0.95);       // can't beat the device
  EXPECT_GE(overlapped, 30 * compute * 0.95);  // can't beat the CPU
}

TEST(BufferedReadStream, DeeperBuffersNeverSlower) {
  const double compute = 0.01;
  const double b1 = run_read_stream(30, 1, compute, true);
  const double b2 = run_read_stream(30, 2, compute, true);
  const double b4 = run_read_stream(30, 4, compute, true);
  EXPECT_LE(b2, b1 + 1e-9);
  EXPECT_LE(b4, b2 + 1e-9);
}

TEST(BufferedReadStream, OverlapWithOneBufferStillSerializes) {
  // One buffer: the producer can only be one chunk ahead, but the consumer
  // releases before the next fetch starts, so behaviour ~ synchronous.
  const double one = run_read_stream(20, 1, 0.01, true);
  const double sync = run_read_stream(20, 1, 0.01, false);
  EXPECT_NEAR(one, sync, sync * 0.1);
}

TEST(BufferedReadStream, ZeroChunksCompletesInstantly) {
  EXPECT_EQ(run_read_stream(0, 2, 0.01, true), 0.0);
}

double run_write_stream(std::uint64_t chunks, std::size_t buffers,
                        double compute, bool overlap) {
  sim::Engine eng;
  SimDiskArray disks(eng, 1);
  double elapsed = 0;
  BufferedStreamConfig cfg;
  cfg.chunks = chunks;
  cfg.buffers = buffers;
  cfg.compute_per_chunk_s = compute;
  cfg.overlap = overlap;
  eng.spawn(buffered_write_stream(
      eng,
      [&](std::uint64_t i) { return disks[0].io(i * kChunk, kChunk); }, cfg,
      &elapsed));
  eng.run();
  return elapsed;
}

TEST(BufferedWriteStream, DeferredWritingOverlaps) {
  const double compute = 0.015;
  const double sync = run_write_stream(30, 1, compute, false);
  const double deferred = run_write_stream(30, 4, compute, true);
  EXPECT_LT(deferred, sync * 0.75);
}

TEST(BufferedWriteStream, DrainsEverything) {
  sim::Engine eng;
  SimDiskArray disks(eng, 1);
  double elapsed = 0;
  BufferedStreamConfig cfg;
  cfg.chunks = 10;
  cfg.buffers = 3;
  cfg.overlap = true;
  eng.spawn(buffered_write_stream(
      eng, [&](std::uint64_t i) { return disks[0].io(i * kChunk, kChunk); },
      cfg, &elapsed));
  eng.run();
  EXPECT_EQ(disks[0].requests(), 10u);
  EXPECT_EQ(disks.total_bytes(), 10 * kChunk);
  EXPECT_GT(elapsed, 0.0);
}

// ----------------------------------------------------------- sim processes

TEST(SimProcess, PatternOpsCoalesceConsecutiveRecords) {
  // Sequential pattern: all records coalesce up to the transfer cap.
  auto ops = pattern_ops(Pattern::sequential(), 10, 100, 4, 0.001);
  ASSERT_EQ(ops.size(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(ops[0].offset, 0u);
  EXPECT_EQ(ops[0].bytes, 400u);
  EXPECT_NEAR(ops[0].compute_s, 0.004, 1e-12);
  EXPECT_EQ(ops[2].bytes, 200u);
}

TEST(SimProcess, InterleavedOpsBreakAtBlockBoundaries) {
  // IS: rank 0, 2 records/block, 3 processes: records {0,1, 6,7, 12,13}.
  auto ops = pattern_ops(Pattern::interleaved(2, 3, 0), 6, 100, 8, 0.0);
  ASSERT_EQ(ops.size(), 3u);  // one op per (non-adjacent) block
  EXPECT_EQ(ops[0].offset, 0u);
  EXPECT_EQ(ops[1].offset, 600u);
  EXPECT_EQ(ops[2].offset, 1200u);
  EXPECT_EQ(ops[1].bytes, 200u);
}

TEST(SimProcess, PartitionedProcessesScaleWithDedicatedDevices) {
  // P processes on P devices (PS, device per process): the makespan should
  // stay roughly flat as P grows (aggregate bandwidth scales) — §4.
  auto makespan = [](std::size_t P) {
    sim::Engine eng;
    SimDiskArray disks(eng, P);
    BlockedLayout layout(P, 10 * kChunk, P);
    std::vector<std::vector<SimOp>> ops;
    for (std::size_t p = 0; p < P; ++p) {
      Pattern pat = Pattern::partitioned(10, static_cast<std::uint32_t>(p));
      ops.push_back(pattern_ops(pat, 10, kChunk, 1, 0.0));
    }
    return run_processes(eng, disks, layout, std::move(ops));
  };
  const double t1 = makespan(1);
  const double t4 = makespan(4);
  const double t8 = makespan(8);
  EXPECT_NEAR(t4, t1, t1 * 0.05);
  EXPECT_NEAR(t8, t1, t1 * 0.05);
}

TEST(SimProcess, SharedDeviceSerializesProcesses) {
  // Same PS workload but all partitions on ONE device: makespan ~ P * t1.
  auto makespan = [](std::size_t P) {
    sim::Engine eng;
    SimDiskArray disks(eng, 1);
    BlockedLayout layout(P, 10 * kChunk, 1);
    std::vector<std::vector<SimOp>> ops;
    for (std::size_t p = 0; p < P; ++p) {
      Pattern pat = Pattern::partitioned(10, static_cast<std::uint32_t>(p));
      ops.push_back(pattern_ops(pat, 10, kChunk, 1, 0.0));
    }
    return run_processes(eng, disks, layout, std::move(ops));
  };
  const double t1 = makespan(1);
  const double t4 = makespan(4);
  EXPECT_GT(t4, 3.5 * t1);
}

TEST(SimProcess, StripedTransferUsesAllDevices) {
  sim::Engine eng;
  SimDiskArray disks(eng, 4);
  StripedLayout layout(4, kChunk);
  std::vector<std::vector<SimOp>> ops;
  ops.push_back({SimOp{0, 4 * kChunk, 0.0}});  // one full-stripe transfer
  run_processes(eng, disks, layout, std::move(ops));
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(disks[d].requests(), 1u) << "device " << d;
  }
}

TEST(SimProcess, DeterministicMakespan) {
  auto once = [] {
    sim::Engine eng;
    SimDiskArray disks(eng, 2);
    StripedLayout layout(2, kChunk);
    std::vector<std::vector<SimOp>> ops;
    for (int p = 0; p < 3; ++p) {
      ops.push_back(pattern_ops(Pattern::sequential(), 5, kChunk, 1, 0.002));
    }
    return run_processes(eng, disks, layout, std::move(ops));
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

}  // namespace
}  // namespace pio
