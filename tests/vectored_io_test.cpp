// Vectored I/O differential tests: for every BlockDevice implementation,
// readv/writev must move exactly the bytes the looped plain read/write
// calls would — discontiguous fragments, abutting runs, and all — plus
// the implementation-specific semantics (op counting, fault gating,
// failover, parity RMW batching, simulated timing).
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "device/faulty_device.hpp"
#include "device/file_disk.hpp"
#include "device/parity_group.hpp"
#include "device/ram_disk.hpp"
#include "device/shadow_device.hpp"
#include "device/sim_disk.hpp"
#include "device/throttle_device.hpp"
#include "test_helpers.hpp"
#include "util/bytes.hpp"

namespace pio {
namespace {

namespace stdfs = std::filesystem;

struct TempDir {
  stdfs::path path;
  TempDir() {
    path = stdfs::temp_directory_path() /
           ("pio_viotest_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    stdfs::create_directories(path);
  }
  ~TempDir() { stdfs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
  std::string str() const { return path.string(); }
};

// A fragment shape with an abutting pair (128 and 192), a gap, a large
// fragment, and a far-away small one — exercises both the contiguous-run
// and the scattered paths.
struct Frag {
  std::uint64_t offset;
  std::size_t length;
};
constexpr Frag kFrags[] = {
    {128, 64}, {192, 64}, {1024, 256}, {8192, 32}, {3000, 100}};

std::vector<std::vector<std::byte>> stamped_buffers(std::uint64_t tag) {
  std::vector<std::vector<std::byte>> bufs;
  std::uint64_t i = 0;
  for (const Frag& f : kFrags) {
    std::vector<std::byte> b(f.length);
    fill_record_payload(b, tag, i++);
    bufs.push_back(std::move(b));
  }
  return bufs;
}

/// writev then loop-read, and loop-write then readv, must both match.
void check_differential(BlockDevice& dev) {
  // Phase 1: vectored write, plain read-back.
  auto wdata = stamped_buffers(11);
  std::vector<ConstIoVec> wiov;
  for (std::size_t i = 0; i < std::size(kFrags); ++i) {
    wiov.push_back(ConstIoVec{kFrags[i].offset, wdata[i]});
  }
  PIO_ASSERT_OK(dev.writev(wiov));
  for (std::size_t i = 0; i < std::size(kFrags); ++i) {
    std::vector<std::byte> back(kFrags[i].length);
    PIO_ASSERT_OK(dev.read(kFrags[i].offset, back));
    EXPECT_EQ(back, wdata[i]) << "fragment " << i << " on " << dev.name();
  }

  // Phase 2: plain writes, vectored read-back.
  auto wdata2 = stamped_buffers(12);
  for (std::size_t i = 0; i < std::size(kFrags); ++i) {
    PIO_ASSERT_OK(dev.write(kFrags[i].offset, wdata2[i]));
  }
  std::vector<std::vector<std::byte>> rbufs;
  std::vector<IoVec> riov;
  for (const Frag& f : kFrags) {
    rbufs.emplace_back(f.length);
    riov.push_back(IoVec{f.offset, rbufs.back()});
  }
  PIO_ASSERT_OK(dev.readv(riov));
  for (std::size_t i = 0; i < std::size(kFrags); ++i) {
    EXPECT_EQ(rbufs[i], wdata2[i]) << "fragment " << i << " on " << dev.name();
  }
}

TEST(VectoredIo, RamDiskDifferential) {
  RamDisk dev("ram", 64 * 1024);
  check_differential(dev);
}

TEST(VectoredIo, RamDiskCountsVectorAsOneOp) {
  RamDisk dev("ram", 64 * 1024);
  auto data = stamped_buffers(3);
  std::vector<ConstIoVec> wiov;
  for (std::size_t i = 0; i < std::size(kFrags); ++i) {
    wiov.push_back(ConstIoVec{kFrags[i].offset, data[i]});
  }
  PIO_ASSERT_OK(dev.writev(wiov));
  EXPECT_EQ(dev.counters().writes.load(), 1u);

  std::vector<std::vector<std::byte>> rbufs;
  std::vector<IoVec> riov;
  for (const Frag& f : kFrags) {
    rbufs.emplace_back(f.length);
    riov.push_back(IoVec{f.offset, rbufs.back()});
  }
  PIO_ASSERT_OK(dev.readv(riov));
  EXPECT_EQ(dev.counters().reads.load(), 1u);
  EXPECT_EQ(dev.counters().bytes_read.load(), iov_bytes(riov));
}

TEST(VectoredIo, RamDiskVectorBoundsCheckedUpFront) {
  RamDisk dev("ram", 4096);
  std::vector<std::byte> ok_buf(64), bad_buf(64);
  std::vector<IoVec> riov{IoVec{0, ok_buf}, IoVec{1 << 20, bad_buf}};
  EXPECT_EQ(dev.readv(riov).code(), Errc::out_of_range);
  EXPECT_EQ(dev.counters().reads.load(), 0u);  // rejected before transfer
}

TEST(VectoredIo, FileDiskDifferential) {
  TempDir dir;
  auto disk = FileDisk::open(dir.str() + "/v.img", 64 * 1024);
  ASSERT_TRUE(disk.ok()) << disk.error().to_string();
  check_differential(**disk);
}

TEST(VectoredIo, FileDiskCountsPerContiguousRun) {
  TempDir dir;
  auto disk = FileDisk::open(dir.str() + "/runs.img", 64 * 1024);
  ASSERT_TRUE(disk.ok());
  auto data = stamped_buffers(4);
  std::vector<ConstIoVec> wiov;
  for (std::size_t i = 0; i < std::size(kFrags); ++i) {
    wiov.push_back(ConstIoVec{kFrags[i].offset, data[i]});
  }
  // kFrags has four contiguous runs: {128+192}, {1024}, {8192}, {3000}.
  PIO_ASSERT_OK((*disk)->writev(wiov));
  EXPECT_EQ((*disk)->counters().writes.load(), 4u);
}

TEST(VectoredIo, FaultyDeviceDifferential) {
  FaultyDevice dev(std::make_unique<RamDisk>("ram", 64 * 1024));
  check_differential(dev);
}

TEST(VectoredIo, FaultyDeviceVectorIsOneGatedOp) {
  FaultyDevice dev(std::make_unique<RamDisk>("ram", 64 * 1024));
  dev.fail_after_ops(2);
  auto data = stamped_buffers(5);
  std::vector<ConstIoVec> wiov;
  for (std::size_t i = 0; i < std::size(kFrags); ++i) {
    wiov.push_back(ConstIoVec{kFrags[i].offset, data[i]});
  }
  // Five fragments consume ONE of the two remaining operations each call.
  PIO_ASSERT_OK(dev.writev(wiov));
  PIO_ASSERT_OK(dev.writev(wiov));
  EXPECT_EQ(dev.writev(wiov).code(), Errc::device_failed);
}

TEST(VectoredIo, FaultyDeviceReadvReportsCorruptFragment) {
  FaultyDevice dev(std::make_unique<RamDisk>("ram", 64 * 1024));
  dev.corrupt_range(1024, 256);  // third fragment
  std::vector<std::vector<std::byte>> rbufs;
  std::vector<IoVec> riov;
  for (const Frag& f : kFrags) {
    rbufs.emplace_back(f.length);
    riov.push_back(IoVec{f.offset, rbufs.back()});
  }
  EXPECT_EQ(dev.readv(riov).code(), Errc::media_error);
  // A vectored write over the range repairs it, like the plain write.
  auto data = stamped_buffers(6);
  std::vector<ConstIoVec> wiov;
  for (std::size_t i = 0; i < std::size(kFrags); ++i) {
    wiov.push_back(ConstIoVec{kFrags[i].offset, data[i]});
  }
  PIO_ASSERT_OK(dev.writev(wiov));
  PIO_ASSERT_OK(dev.readv(riov));
}

TEST(VectoredIo, ShadowDeviceDifferential) {
  ShadowDevice dev(std::make_unique<RamDisk>("p", 64 * 1024),
                   std::make_unique<RamDisk>("s", 64 * 1024));
  check_differential(dev);
}

TEST(VectoredIo, ShadowDeviceReadvFailsOverToShadow) {
  auto primary = std::make_unique<FaultyDevice>(
      std::make_unique<RamDisk>("p", 64 * 1024));
  FaultyDevice* primary_raw = primary.get();
  ShadowDevice dev(std::move(primary),
                   std::make_unique<RamDisk>("s", 64 * 1024));
  auto data = stamped_buffers(7);
  std::vector<ConstIoVec> wiov;
  for (std::size_t i = 0; i < std::size(kFrags); ++i) {
    wiov.push_back(ConstIoVec{kFrags[i].offset, data[i]});
  }
  PIO_ASSERT_OK(dev.writev(wiov));  // mirrored to both sides
  primary_raw->fail_now();
  std::vector<std::vector<std::byte>> rbufs;
  std::vector<IoVec> riov;
  for (const Frag& f : kFrags) {
    rbufs.emplace_back(f.length);
    riov.push_back(IoVec{f.offset, rbufs.back()});
  }
  PIO_ASSERT_OK(dev.readv(riov));  // whole vector served by the shadow
  for (std::size_t i = 0; i < std::size(kFrags); ++i) {
    EXPECT_EQ(rbufs[i], data[i]);
  }
}

TEST(VectoredIo, ThrottledDeviceDifferential) {
  ThrottledDevice dev(std::make_unique<RamDisk>("ram", 64 * 1024), 1.0);
  check_differential(dev);
}

TEST(VectoredIo, ParityGroupWritevKeepsInvariantWithOneRmw) {
  std::vector<std::unique_ptr<BlockDevice>> owned;
  std::vector<BlockDevice*> data;
  for (int i = 0; i < 3; ++i) {
    owned.push_back(std::make_unique<RamDisk>("d" + std::to_string(i),
                                              64 * 1024));
    data.push_back(owned.back().get());
  }
  owned.push_back(std::make_unique<RamDisk>("par", 64 * 1024));
  ParityGroup group(data, owned.back().get());

  auto payload = stamped_buffers(9);
  std::vector<ConstIoVec> wiov;
  for (std::size_t i = 0; i < std::size(kFrags); ++i) {
    wiov.push_back(ConstIoVec{kFrags[i].offset, payload[i]});
  }
  PIO_ASSERT_OK(group.writev(1, wiov));
  EXPECT_EQ(group.parity_rmw_count(), 1u);  // one RMW for the whole vector

  auto consistent = group.verify();
  ASSERT_TRUE(consistent.ok());
  EXPECT_EQ(*consistent, group.protected_capacity());

  // Vectored read-back matches, and degraded reads reconstruct the same
  // bytes from parity — proof the parity RMW covered every fragment.
  std::vector<std::vector<std::byte>> rbufs;
  std::vector<IoVec> riov;
  for (const Frag& f : kFrags) {
    rbufs.emplace_back(f.length);
    riov.push_back(IoVec{f.offset, rbufs.back()});
  }
  PIO_ASSERT_OK(group.readv(1, riov));
  for (std::size_t i = 0; i < std::size(kFrags); ++i) {
    EXPECT_EQ(rbufs[i], payload[i]);
    std::vector<std::byte> rebuilt(kFrags[i].length);
    PIO_ASSERT_OK(group.degraded_read(1, kFrags[i].offset, rebuilt));
    EXPECT_EQ(rebuilt, payload[i]);
  }
}

// ------------------------------------------------------- SimDisk (timing)

sim::Task sim_separate(SimDisk& disk, sim::WaitGroup& wg) {
  for (int i = 0; i < 6; ++i) {
    co_await disk.io(static_cast<std::uint64_t>(i) * 4096, 4096);
  }
  wg.done();
}

sim::Task sim_vectored(SimDisk& disk, sim::WaitGroup& wg) {
  std::vector<SimIoVec> frags;
  for (int i = 0; i < 6; ++i) {
    frags.push_back(SimIoVec{static_cast<std::uint64_t>(i) * 4096, 4096});
  }
  co_await disk.iov(std::move(frags));
  wg.done();
}

TEST(VectoredIo, SimDiskVectoredPaysOnePositioningCharge) {
  double separate_s = 0, vectored_s = 0;
  std::uint64_t separate_reqs = 0, vectored_reqs = 0;
  {
    sim::Engine eng;
    SimDisk disk(eng, "sep");
    sim::WaitGroup wg(eng);
    wg.add(1);
    eng.spawn(sim_separate(disk, wg));
    separate_s = eng.run();
    separate_reqs = disk.requests();
    EXPECT_EQ(disk.bytes_transferred(), 6u * 4096u);
  }
  {
    sim::Engine eng;
    SimDisk disk(eng, "vec");
    sim::WaitGroup wg(eng);
    wg.add(1);
    eng.spawn(sim_vectored(disk, wg));
    vectored_s = eng.run();
    vectored_reqs = disk.requests();
    EXPECT_EQ(disk.bytes_transferred(), 6u * 4096u);
  }
  EXPECT_EQ(separate_reqs, 6u);
  EXPECT_EQ(vectored_reqs, 1u);  // one queued request, one positioning
  // Same bytes, five fewer seek+rotation charges: strictly faster.
  EXPECT_LT(vectored_s, separate_s);
}

TEST(VectoredIo, SimDiskEmptyVectorCompletesImmediately) {
  sim::Engine eng;
  SimDisk disk(eng, "empty");
  sim::WaitGroup wg(eng);
  wg.add(1);
  eng.spawn([](SimDisk& d, sim::WaitGroup& w) -> sim::Task {
    co_await d.iov({});
    w.done();
  }(disk, wg));
  eng.run();
  EXPECT_EQ(disk.requests(), 0u);
}

}  // namespace
}  // namespace pio
