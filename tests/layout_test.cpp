// Layout property tests: every layout must be a bijection between the
// logical byte space and the union of per-device extents, with segments
// that concatenate back to the requested range.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "layout/layout.hpp"

namespace pio {
namespace {

// A layout under test plus the logical size to sweep.
struct LayoutCase {
  std::string name;
  std::shared_ptr<const Layout> layout;
  std::uint64_t file_size;
};

std::vector<LayoutCase> layout_cases() {
  std::vector<LayoutCase> cases;
  auto add = [&](std::string name, std::unique_ptr<Layout> l,
                 std::uint64_t size) {
    cases.push_back(LayoutCase{std::move(name),
                               std::shared_ptr<const Layout>(std::move(l)),
                               size});
  };
  add("striped_1dev", std::make_unique<StripedLayout>(1, 16), 300);
  add("striped_4dev_u16", std::make_unique<StripedLayout>(4, 16), 1024);
  add("striped_4dev_u16_ragged", std::make_unique<StripedLayout>(4, 16), 1000);
  add("striped_3dev_u7", std::make_unique<StripedLayout>(3, 7), 500);
  add("striped_8dev_u1", std::make_unique<StripedLayout>(8, 1), 257);
  add("blocked_rr_4x100_2dev",
      std::make_unique<BlockedLayout>(4, 100, 2, PartitionPlacement::round_robin),
      400);
  add("blocked_grp_4x100_2dev",
      std::make_unique<BlockedLayout>(4, 100, 2, PartitionPlacement::grouped),
      400);
  add("blocked_rr_5x64_3dev",
      std::make_unique<BlockedLayout>(5, 64, 3, PartitionPlacement::round_robin),
      320);
  add("blocked_grp_5x64_3dev",
      std::make_unique<BlockedLayout>(5, 64, 3, PartitionPlacement::grouped),
      320);
  add("blocked_1per_dev", std::make_unique<BlockedLayout>(4, 50, 4), 200);
  add("blocked_short_tail",
      std::make_unique<BlockedLayout>(4, 100, 2, PartitionPlacement::grouped),
      350);  // last partition half-filled
  add("interleaved_4dev_b64", make_interleaved_layout(4, 64), 1024);
  add("declustered_4dev_b64", make_declustered_layout(4, 64), 1024);
  return cases;
}

class LayoutProperty : public ::testing::TestWithParam<LayoutCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, LayoutProperty, ::testing::ValuesIn(layout_cases()),
    [](const ::testing::TestParamInfo<LayoutCase>& info) {
      return info.param.name;
    });

TEST_P(LayoutProperty, SegmentsConcatenateToRange) {
  const auto& [name, layout, size] = GetParam();
  for (std::uint64_t start : {std::uint64_t{0}, size / 3, size / 2}) {
    for (std::uint64_t len : {std::uint64_t{1}, std::uint64_t{13}, size - start}) {
      if (start + len > size) continue;
      std::uint64_t total = 0;
      for (const Segment& seg : layout->map(start, len)) {
        EXPECT_LT(seg.device, layout->device_count());
        EXPECT_GT(seg.length, 0u);
        total += seg.length;
      }
      EXPECT_EQ(total, len) << "range [" << start << ", " << start + len << ")";
    }
  }
}

TEST_P(LayoutProperty, BytewiseMapInvertsViaLogicalOf) {
  const auto& [name, layout, size] = GetParam();
  for (std::uint64_t off = 0; off < size; ++off) {
    const auto segs = layout->map(off, 1);
    ASSERT_EQ(segs.size(), 1u);
    const auto logical = layout->logical_of(segs[0].device, segs[0].offset);
    ASSERT_TRUE(logical.has_value()) << "offset " << off;
    EXPECT_EQ(*logical, off);
  }
}

TEST_P(LayoutProperty, NoTwoLogicalBytesShareAPhysicalByte) {
  const auto& [name, layout, size] = GetParam();
  std::map<std::pair<std::size_t, std::uint64_t>, std::uint64_t> seen;
  for (std::uint64_t off = 0; off < size; ++off) {
    const auto segs = layout->map(off, 1);
    const auto key = std::make_pair(segs[0].device, segs[0].offset);
    auto [it, inserted] = seen.emplace(key, off);
    EXPECT_TRUE(inserted) << "physical byte (" << key.first << ", "
                          << key.second << ") claimed by logical " << it->second
                          << " and " << off;
  }
}

TEST_P(LayoutProperty, RangeMapMatchesBytewiseMap) {
  const auto& [name, layout, size] = GetParam();
  const auto segs = layout->map(0, size);
  std::uint64_t logical = 0;
  for (const Segment& seg : segs) {
    for (std::uint64_t i = 0; i < seg.length; ++i, ++logical) {
      const auto one = layout->map(logical, 1);
      ASSERT_EQ(one.size(), 1u);
      EXPECT_EQ(one[0].device, seg.device);
      EXPECT_EQ(one[0].offset, seg.offset + i);
    }
  }
  EXPECT_EQ(logical, size);
}

TEST_P(LayoutProperty, FootprintsCoverFileSize) {
  const auto& [name, layout, size] = GetParam();
  std::uint64_t total = 0;
  for (std::size_t d = 0; d < layout->device_count(); ++d) {
    total += layout->device_bytes_required(d, size);
  }
  EXPECT_EQ(total, size);
}

TEST_P(LayoutProperty, FootprintBoundsMaxMappedOffset) {
  const auto& [name, layout, size] = GetParam();
  std::vector<std::uint64_t> max_end(layout->device_count(), 0);
  for (const Segment& seg : layout->map(0, size)) {
    max_end[seg.device] = std::max(max_end[seg.device], seg.offset + seg.length);
  }
  for (std::size_t d = 0; d < layout->device_count(); ++d) {
    EXPECT_EQ(max_end[d], layout->device_bytes_required(d, size))
        << "device " << d;
  }
}

TEST_P(LayoutProperty, DescribeIsNonEmpty) {
  EXPECT_FALSE(GetParam().layout->describe().empty());
}

// ------------------------------------------------------- targeted behaviour

TEST(StripedLayout, RoundRobinAssignment) {
  StripedLayout l(3, 10);
  // Units 0,1,2 -> devices 0,1,2; unit 3 -> device 0 at offset 10.
  auto segs = l.map(0, 60);
  ASSERT_EQ(segs.size(), 6u);
  EXPECT_EQ(segs[0], (Segment{0, 0, 10}));
  EXPECT_EQ(segs[1], (Segment{1, 0, 10}));
  EXPECT_EQ(segs[2], (Segment{2, 0, 10}));
  EXPECT_EQ(segs[3], (Segment{0, 10, 10}));
}

TEST(StripedLayout, SingleDeviceMergesToOneSegment) {
  StripedLayout l(1, 16);
  auto segs = l.map(5, 100);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{0, 5, 100}));
}

TEST(StripedLayout, SubUnitRequestStaysOnOneDevice) {
  StripedLayout l(4, 1024);
  auto segs = l.map(2048 + 100, 50);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].device, 2u);
  EXPECT_EQ(segs[0].offset, 100u);
}

TEST(StripedLayout, UnalignedStartSplitsCorrectly) {
  StripedLayout l(2, 10);
  auto segs = l.map(7, 10);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (Segment{0, 7, 3}));
  EXPECT_EQ(segs[1], (Segment{1, 0, 7}));
}

TEST(BlockedLayout, OneDevicePerPartitionWhenEqual) {
  BlockedLayout l(3, 100, 3);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(l.device_of_partition(p), p);
    EXPECT_EQ(l.device_base_of_partition(p), 0u);
  }
  auto segs = l.map(150, 100);  // partition 1 tail + partition 2 head
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (Segment{1, 50, 50}));
  EXPECT_EQ(segs[1], (Segment{2, 0, 50}));
}

TEST(BlockedLayout, RoundRobinPlacementSpreadsNeighbours) {
  BlockedLayout l(4, 100, 2, PartitionPlacement::round_robin);
  EXPECT_EQ(l.device_of_partition(0), 0u);
  EXPECT_EQ(l.device_of_partition(1), 1u);
  EXPECT_EQ(l.device_of_partition(2), 0u);
  EXPECT_EQ(l.device_of_partition(3), 1u);
  EXPECT_EQ(l.device_base_of_partition(2), 100u);
}

TEST(BlockedLayout, GroupedPlacementKeepsNeighboursTogether) {
  BlockedLayout l(4, 100, 2, PartitionPlacement::grouped);
  EXPECT_EQ(l.device_of_partition(0), 0u);
  EXPECT_EQ(l.device_of_partition(1), 0u);
  EXPECT_EQ(l.device_of_partition(2), 1u);
  EXPECT_EQ(l.device_of_partition(3), 1u);
  EXPECT_EQ(l.device_base_of_partition(1), 100u);
  EXPECT_EQ(l.device_base_of_partition(3), 100u);
}

TEST(BlockedLayout, GroupedUnevenSplit) {
  // 5 partitions over 3 devices: groups of 2, 2, 1.
  BlockedLayout l(5, 10, 3, PartitionPlacement::grouped);
  EXPECT_EQ(l.device_of_partition(0), 0u);
  EXPECT_EQ(l.device_of_partition(1), 0u);
  EXPECT_EQ(l.device_of_partition(2), 1u);
  EXPECT_EQ(l.device_of_partition(3), 1u);
  EXPECT_EQ(l.device_of_partition(4), 2u);
}

TEST(BlockedLayout, LogicalOfRejectsPaddingSpace) {
  BlockedLayout l(5, 64, 3, PartitionPlacement::grouped);
  // Device 2 holds only one partition (64 bytes); beyond that is unused.
  EXPECT_FALSE(l.logical_of(2, 64).has_value());
  EXPECT_TRUE(l.logical_of(2, 63).has_value());
  EXPECT_FALSE(l.logical_of(7, 0).has_value());  // no such device
}

TEST(BlockedLayout, ShortFileFootprints) {
  BlockedLayout l(4, 100, 2, PartitionPlacement::grouped);
  // File of 250 bytes: partitions 0,1 full, partition 2 half, partition 3
  // empty.  Device 0 holds partitions 0,1; device 1 holds 2,3.
  EXPECT_EQ(l.device_bytes_required(0, 250), 200u);
  EXPECT_EQ(l.device_bytes_required(1, 250), 50u);
}

TEST(InterleavedFactory, BlockGranularStriping) {
  auto l = make_interleaved_layout(3, 64);
  auto segs = l->map(0, 192);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].device, 0u);
  EXPECT_EQ(segs[1].device, 1u);
  EXPECT_EQ(segs[2].device, 2u);
  EXPECT_EQ(segs[0].length, 64u);
}

TEST(DeclusteredFactory, SplitsEachBlockOverAllDevices) {
  auto l = make_declustered_layout(4, 64);
  // One 64-byte block fans out over all 4 devices, 16 bytes each.
  auto segs = l->map(0, 64);
  ASSERT_EQ(segs.size(), 4u);
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(segs[d].device, d);
    EXPECT_EQ(segs[d].length, 16u);
  }
  // The NEXT block starts again on device 0: every block touches all disks.
  auto next = l->map(64, 64);
  EXPECT_EQ(next[0].device, 0u);
  EXPECT_EQ(next[0].offset, 16u);
}

}  // namespace
}  // namespace pio
