// Edge-case and hardening tests across modules: concurrency on shared
// structures, boundary conditions, and less-travelled API paths.
#include <gtest/gtest.h>

#include <thread>

#include "core/global_view.hpp"
#include "core/handles.hpp"
#include "device/file_disk.hpp"
#include "device/parity_group.hpp"
#include "device/ram_disk.hpp"
#include "sim/engine.hpp"
#include "test_helpers.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pio {
namespace {

// ------------------------------------------------ ParityGroup concurrency

TEST(EdgeCases, ParityGroupSurvivesConcurrentWriters) {
  constexpr std::uint64_t kCap = 64 * 1024;
  std::vector<std::unique_ptr<RamDisk>> disks;
  std::vector<BlockDevice*> data;
  for (int i = 0; i < 4; ++i) {
    disks.push_back(std::make_unique<RamDisk>("d" + std::to_string(i), kCap));
    data.push_back(disks.back().get());
  }
  RamDisk parity("p", kCap);
  ParityGroup group(data, &parity);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng{static_cast<std::uint64_t>(t) + 7};
      std::vector<std::byte> buf(256);
      for (int i = 0; i < 150; ++i) {
        fill_record_payload(buf, static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(i));
        const std::size_t dev = static_cast<std::size_t>(rng.uniform_u64(4));
        const std::uint64_t off = rng.uniform_u64(kCap / 256) * 256;
        ASSERT_TRUE(group.write(dev, off, buf).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  // Whatever interleaving happened, the parity invariant must hold.
  auto v = group.verify();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, kCap);
}

// ----------------------------------------------------- FileDisk concurrency

TEST(EdgeCases, FileDiskConcurrentDisjointWriters) {
  const std::string path = ::testing::TempDir() + "pio_edge_filedisk.img";
  auto disk = FileDisk::open(path, 64 * 1024);
  ASSERT_TRUE(disk.ok());
  constexpr int kThreads = 6;
  constexpr std::size_t kSlice = 8 * 1024;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::byte> buf(kSlice);
      fill_record_payload(buf, 99, static_cast<std::uint64_t>(t));
      ASSERT_TRUE(
          (*disk)->write(static_cast<std::uint64_t>(t) * kSlice, buf).ok());
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    std::vector<std::byte> back(kSlice);
    ASSERT_TRUE(
        (*disk)->read(static_cast<std::uint64_t>(t) * kSlice, back).ok());
    EXPECT_TRUE(verify_record_payload(back, 99, static_cast<std::uint64_t>(t)));
  }
  std::remove(path.c_str());
}

// ----------------------------------------------------------- engine corners

sim::Task ticker(sim::Engine& eng, std::vector<double>& ticks, int n) {
  for (int i = 0; i < n; ++i) {
    co_await eng.delay(1.0);
    ticks.push_back(eng.now());
  }
}

TEST(EdgeCases, RunUntilSuspendsAndResumesCoroutines) {
  sim::Engine eng;
  std::vector<double> ticks;
  eng.spawn(ticker(eng, ticks, 10));
  eng.run_until(3.5);
  EXPECT_EQ(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(eng.now(), 3.5);
  eng.run_until(7.0);
  EXPECT_EQ(ticks.size(), 7u);
  eng.run();
  EXPECT_EQ(ticks.size(), 10u);
}

TEST(EdgeCases, EventCountTracksExecutions) {
  sim::Engine eng;
  std::vector<double> ticks;
  eng.spawn(ticker(eng, ticks, 5));
  eng.run();
  // 1 spawn event + 5 delays.
  EXPECT_EQ(eng.events_executed(), 6u);
}

// -------------------------------------------------- global view write paths

TEST(EdgeCases, GlobalViewWriteBatchThenReadBack) {
  DeviceArray devices = make_ram_array(3, 1 << 20);
  FileMeta meta;
  meta.name = "wb";
  meta.organization = Organization::interleaved;
  meta.layout_kind = LayoutKind::interleaved;
  meta.record_bytes = 64;
  meta.records_per_block = 2;
  meta.partitions = 3;
  meta.capacity_records = 60;
  auto file = std::make_shared<ParallelFile>(
      meta, devices, std::vector<std::uint64_t>(3, 0));
  GlobalSequentialView view(file);
  std::vector<std::byte> bulk(20 * 64);
  for (std::uint64_t batch = 0; batch < 3; ++batch) {
    for (std::uint64_t i = 0; i < 20; ++i) {
      fill_record_payload(std::span<std::byte>(bulk.data() + i * 64, 64), 4,
                          batch * 20 + i);
    }
    PIO_ASSERT_OK(view.write_batch(20, bulk));
  }
  for (std::uint64_t i = 0; i < 60; ++i) {
    EXPECT_TRUE(pio::testing::record_matches(*file, i, 4));
  }
}

TEST(EdgeCases, GlobalViewWritePastCapacityFails) {
  DeviceArray devices = make_ram_array(2, 1 << 20);
  FileMeta meta;
  meta.name = "cap";
  meta.organization = Organization::sequential;
  meta.record_bytes = 64;
  meta.capacity_records = 3;
  auto file = std::make_shared<ParallelFile>(
      meta, devices, std::vector<std::uint64_t>(2, 0));
  GlobalSequentialView view(file);
  std::vector<std::byte> rec(64);
  for (int i = 0; i < 3; ++i) PIO_ASSERT_OK(view.write_next(rec));
  EXPECT_EQ(view.write_next(rec).code(), Errc::out_of_range);
}

// ----------------------------------------------------------- handle corners

TEST(EdgeCases, SsPatternHandleOnPsFile) {
  // The §5 mismatch in the other direction: consume a PS file
  // self-scheduled (dynamic load balance over a statically partitioned
  // file).  SS ignores partition bookkeeping and walks the contiguous
  // logical space up to record_count.
  DeviceArray devices = make_ram_array(2, 1 << 20);
  FileMeta meta;
  meta.name = "ps";
  meta.organization = Organization::partitioned;
  meta.layout_kind = LayoutKind::blocked;
  meta.record_bytes = 64;
  meta.partitions = 2;
  meta.capacity_records = 40;
  auto file = std::make_shared<ParallelFile>(
      meta, devices, std::vector<std::uint64_t>(2, 0));
  pio::testing::fill_stamped(*file, 40, 13);
  std::set<std::uint64_t> seen;
  std::vector<std::byte> rec(64);
  for (std::uint32_t rank = 0; rank < 3; ++rank) {
    auto h = open_pattern_handle(file, Organization::self_scheduled, rank);
    ASSERT_TRUE(h.ok());
    while ((*h)->read_next(rec).ok()) {
      EXPECT_TRUE(seen.insert((*h)->last_record()).second);
    }
  }
  EXPECT_EQ(seen.size(), 40u);
}

TEST(EdgeCases, InterleavedReadBoundWithPartialTailBlock) {
  DeviceArray devices = make_ram_array(2, 1 << 20);
  FileMeta meta;
  meta.name = "is";
  meta.organization = Organization::interleaved;
  meta.layout_kind = LayoutKind::interleaved;
  meta.record_bytes = 64;
  meta.records_per_block = 4;
  meta.partitions = 2;
  meta.capacity_records = 100;
  auto file = std::make_shared<ParallelFile>(
      meta, devices, std::vector<std::uint64_t>(2, 0));
  // 10 records = 2 full blocks + half of block 2 (rank 0's).
  pio::testing::fill_stamped(*file, 10, 14);
  int counts[2] = {0, 0};
  std::vector<std::byte> rec(64);
  for (std::uint32_t rank = 0; rank < 2; ++rank) {
    auto h = open_process_handle(file, rank);
    ASSERT_TRUE(h.ok());
    while ((*h)->read_next(rec).ok()) ++counts[rank];
  }
  EXPECT_EQ(counts[0], 6);  // block 0 (4) + partial block 2 (2)
  EXPECT_EQ(counts[1], 4);  // block 1
}

TEST(EdgeCases, RewoundSsFileSupportsSecondPass) {
  DeviceArray devices = make_ram_array(2, 1 << 20);
  FileMeta meta;
  meta.name = "ss";
  meta.organization = Organization::self_scheduled;
  meta.record_bytes = 64;
  meta.capacity_records = 20;
  auto file = std::make_shared<ParallelFile>(
      meta, devices, std::vector<std::uint64_t>(2, 0));
  pio::testing::fill_stamped(*file, 20, 15);
  auto h = open_process_handle(file, 0);
  ASSERT_TRUE(h.ok());
  std::vector<std::byte> rec(64);
  int pass1 = 0, pass2 = 0;
  while ((*h)->read_next(rec).ok()) ++pass1;
  (*h)->rewind();
  while ((*h)->read_next(rec).ok()) ++pass2;
  EXPECT_EQ(pass1, 20);
  EXPECT_EQ(pass2, 20);
}

// -------------------------------------------------------------- stats edge

TEST(EdgeCases, HistogramQuantileEmptyAndSingle) {
  Histogram h(0, 10, 5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty -> lo
  h.add(7.0);
  EXPECT_NEAR(h.quantile(0.5), 7.0, 1.1);  // within the containing bucket
}

TEST(EdgeCases, PayloadZeroLengthAlwaysVerifies) {
  std::span<std::byte> empty;
  EXPECT_TRUE(verify_record_payload(empty, 1, 2));
}

}  // namespace
}  // namespace pio
