// Quickstart: format a parallel file system over a device array, write a
// striped standard file from four self-scheduled worker threads, then read
// it back through the conventional global view — the paper's two-view
// story (§2) end to end.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/file_system.hpp"
#include "core/global_view.hpp"
#include "core/handles.hpp"
#include "device/ram_disk.hpp"
#include "util/bytes.hpp"

using namespace pio;

namespace {

constexpr std::uint32_t kWorkers = 4;
constexpr std::uint64_t kRecords = 1000;
constexpr std::uint32_t kRecordBytes = 512;

void fail(const char* what, const Error& error) {
  std::fprintf(stderr, "%s: %s\n", what, error.to_string().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  // 1. An I/O subsystem of 8 devices (RAM-backed here; the library's
  //    device interface is what a real driver would implement).
  DeviceArray devices = make_ram_array(8, 4 << 20);
  auto fs = FileSystem::format(devices);
  if (!fs.ok()) fail("format", fs.error());

  // 2. A standard parallel file: SS organization (workers pull the next
  //    output slot), striped across all devices per §4.
  CreateOptions opts;
  opts.name = "results.dat";
  opts.organization = Organization::self_scheduled;
  opts.category = FileCategory::standard;
  opts.record_bytes = kRecordBytes;
  opts.capacity_records = kRecords;
  auto file = (*fs)->create(opts);
  if (!file.ok()) fail("create", file.error());

  // 3. Four worker threads produce records concurrently.  The shared SS
  //    cursor hands each write the next slot: no partitioning logic in
  //    the application at all.
  std::vector<std::thread> workers;
  for (std::uint32_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&file, w] {
      auto handle = open_process_handle(*file, w);
      if (!handle.ok()) return;
      std::vector<std::byte> record(kRecordBytes);
      for (std::uint64_t i = 0; i < kRecords / kWorkers; ++i) {
        // Compute something, stamp it so readers can verify provenance.
        fill_record_payload(record, /*tag=*/7, /*index=*/0);
        stamp_record_index(record, w);
        if (!(*handle)->write_next(record).ok()) break;
      }
    });
  }
  for (auto& t : workers) t.join();
  std::printf("wrote %llu records from %u self-scheduled workers\n",
              static_cast<unsigned long long>((*file)->record_count()),
              kWorkers);

  // 4. A conventional (sequential) program reads the same file through
  //    the global view, oblivious to how it was produced.
  GlobalSequentialView view(*file);
  std::vector<std::uint64_t> per_worker(kWorkers, 0);
  std::vector<std::byte> record(kRecordBytes);
  while (view.read_next(record).ok()) {
    ++per_worker[read_record_index(record) % kWorkers];
  }
  std::printf("global view saw %llu records; per-worker contribution:",
              static_cast<unsigned long long>(view.size()));
  for (std::uint32_t w = 0; w < kWorkers; ++w) {
    std::printf(" P%u=%llu", w,
                static_cast<unsigned long long>(per_worker[w]));
  }
  std::printf("\n");

  // 5. The catalog persists: sync, then re-mount the same devices.
  if (auto st = (*fs)->sync(); !st.ok()) fail("sync", st.error());
  auto remounted = FileSystem::mount(devices);
  if (!remounted.ok()) fail("mount", remounted.error());
  const auto meta = (*remounted)->stat("results.dat");
  std::printf("remounted: %s, organization=%s, %llu/%llu records\n",
              meta->name.c_str(),
              std::string(organization_name(meta->organization)).c_str(),
              static_cast<unsigned long long>(kRecords),
              static_cast<unsigned long long>(meta->capacity_records));
  return 0;
}
