// Out-of-core computation over a PDA file (§3.2: "This organization is
// useful for programs which can't fit all of their data into memory, and
// are using files for auxiliary storage.  Blocks can be thought of as
// pages of virtual memory, with the direct access feature allowing
// multiple passes on the data.")
//
// An out-of-core blocked matrix transpose: the matrix lives in a PDA file,
// each process owns a band of block-rows, and an LRU buffer cache
// (§4's buffer caching for direct access) backs the block accesses.
#include <cstdio>
#include <thread>
#include <vector>

#include "buffer/lru_cache.hpp"
#include "core/file_system.hpp"
#include "core/handles.hpp"
#include "device/ram_disk.hpp"

using namespace pio;

namespace {

constexpr std::uint32_t kTiles = 8;       // matrix is kTiles x kTiles tiles
constexpr std::uint32_t kTileDim = 32;    // doubles per tile side
constexpr std::uint32_t kTileBytes = kTileDim * kTileDim * sizeof(double);
constexpr std::uint32_t kProcesses = 4;

void fail(const char* what, const Error& error) {
  std::fprintf(stderr, "%s: %s\n", what, error.to_string().c_str());
  std::exit(1);
}

std::uint64_t tile_record(std::uint32_t r, std::uint32_t c) {
  return static_cast<std::uint64_t>(r) * kTiles + c;
}

double cell_value(std::uint32_t row, std::uint32_t col) {
  return static_cast<double>(row) * 1e4 + col;
}

}  // namespace

int main() {
  DeviceArray devices = make_ram_array(kProcesses, 16 << 20);
  auto fs = FileSystem::format(devices);
  if (!fs.ok()) fail("format", fs.error());

  // One record per tile; contiguous bands of block-rows per process.
  CreateOptions opts;
  opts.name = "matrix.ooc";
  opts.organization = Organization::partitioned_direct;
  opts.category = FileCategory::specialized;
  opts.record_bytes = kTileBytes;
  opts.records_per_block = 1;
  opts.partitions = kProcesses;
  opts.capacity_records = kTiles * kTiles;
  auto file = (*fs)->create(opts);
  if (!file.ok()) fail("create", file.error());

  // Load phase: fill tiles with addressable values via a GDA-style pass
  // (rank-agnostic direct writes through the shared file).
  {
    DirectHandle loader(*file);
    std::vector<double> tile(kTileDim * kTileDim);
    for (std::uint32_t tr = 0; tr < kTiles; ++tr) {
      for (std::uint32_t tc = 0; tc < kTiles; ++tc) {
        for (std::uint32_t i = 0; i < kTileDim; ++i) {
          for (std::uint32_t j = 0; j < kTileDim; ++j) {
            tile[i * kTileDim + j] =
                cell_value(tr * kTileDim + i, tc * kTileDim + j);
          }
        }
        auto st = loader.write_at(tile_record(tr, tc),
                                  std::as_bytes(std::span<const double>(tile)));
        if (!st.ok()) fail("load", st.error());
      }
    }
  }

  // Transpose phase: process p owns block-rows [p*kTiles/P, ...).  It
  // transposes diagonal tiles in place and swaps symmetric pairs with the
  // mirrored band through an LRU cache of 6 tile frames per process (far
  // less than the 16 tiles a band touches: genuinely out-of-core).
  std::vector<LruBufferCache::Stats> stats(kProcesses);
  std::vector<std::thread> workers;
  for (std::uint32_t p = 0; p < kProcesses; ++p) {
    workers.emplace_back([&, p] {
      LruBufferCache cache(
          6, kTileBytes,
          [&](std::uint64_t rec, std::span<std::byte> into) {
            return (*file)->read_record(rec, into);
          },
          [&](std::uint64_t rec, std::span<const std::byte> from) {
            return (*file)->write_record(rec, from);
          });
      const std::uint32_t rows_per = kTiles / kProcesses;
      std::vector<double> a(kTileDim * kTileDim), b(kTileDim * kTileDim);
      for (std::uint32_t tr = p * rows_per; tr < (p + 1) * rows_per; ++tr) {
        // Upper triangle only; the symmetric partner is swapped in the
        // same step (its owner leaves the lower triangle to us: a simple
        // ownership convention that avoids write conflicts).
        for (std::uint32_t tc = tr; tc < kTiles; ++tc) {
          auto ra = tile_record(tr, tc);
          auto rb = tile_record(tc, tr);
          (void)cache.read(ra, std::as_writable_bytes(std::span<double>(a)));
          (void)cache.read(rb, std::as_writable_bytes(std::span<double>(b)));
          // Transpose both tiles and swap them.
          auto transpose = [](std::vector<double>& t) {
            for (std::uint32_t i = 0; i < kTileDim; ++i) {
              for (std::uint32_t j = i + 1; j < kTileDim; ++j) {
                std::swap(t[i * kTileDim + j], t[j * kTileDim + i]);
              }
            }
          };
          transpose(a);
          transpose(b);
          (void)cache.write(ra, std::as_bytes(std::span<const double>(b)));
          (void)cache.write(rb, std::as_bytes(std::span<const double>(a)));
        }
      }
      if (auto st = cache.flush_all(); !st.ok()) return;
      stats[p] = cache.stats();
    });
  }
  for (auto& t : workers) t.join();

  for (std::uint32_t p = 0; p < kProcesses; ++p) {
    std::printf(
        "process %u: cache hits=%llu misses=%llu evictions=%llu "
        "writebacks=%llu (hit rate %.0f%%)\n",
        p, static_cast<unsigned long long>(stats[p].hits),
        static_cast<unsigned long long>(stats[p].misses),
        static_cast<unsigned long long>(stats[p].evictions),
        static_cast<unsigned long long>(stats[p].writebacks),
        stats[p].hit_rate() * 100);
  }

  // Verify: element (r, c) must now hold cell_value(c, r).
  DirectHandle checker(*file);
  std::vector<double> tile(kTileDim * kTileDim);
  std::uint64_t errors = 0;
  for (std::uint32_t tr = 0; tr < kTiles; ++tr) {
    for (std::uint32_t tc = 0; tc < kTiles; ++tc) {
      (void)checker.read_at(tile_record(tr, tc),
                            std::as_writable_bytes(std::span<double>(tile)));
      for (std::uint32_t i = 0; i < kTileDim; ++i) {
        for (std::uint32_t j = 0; j < kTileDim; ++j) {
          const double expect =
              cell_value(tc * kTileDim + j, tr * kTileDim + i);
          if (tile[i * kTileDim + j] != expect) ++errors;
        }
      }
    }
  }
  std::printf("transpose check: %llu wrong cells out of %u\n",
              static_cast<unsigned long long>(errors),
              kTiles * kTiles * kTileDim * kTileDim);
  return errors == 0 ? 0 : 1;
}
