// Checkpoint/restart on specialized parallel files (§2: "temporary files
// used for intermediate results, checkpointing, and out-of-core storage"),
// with the §5 reliability machinery exercised for real: a device fails
// mid-run, reads fail over to its shadow, and the pair is resilvered.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/file_system.hpp"
#include "core/handles.hpp"
#include "device/faulty_device.hpp"
#include "device/ram_disk.hpp"
#include "device/shadow_device.hpp"
#include "util/bytes.hpp"

using namespace pio;

namespace {

constexpr std::uint32_t kProcesses = 4;
constexpr std::uint64_t kStatePerProcess = 64;  // records of solver state
constexpr std::uint32_t kRecordBytes = 1024;

void fail(const char* what, const Error& error) {
  std::fprintf(stderr, "%s: %s\n", what, error.to_string().c_str());
  std::exit(1);
}

/// Write each process's state under checkpoint epoch `epoch`.
void take_checkpoint(const std::shared_ptr<ParallelFile>& ckpt,
                     std::uint64_t epoch) {
  std::vector<std::thread> workers;
  for (std::uint32_t p = 0; p < kProcesses; ++p) {
    workers.emplace_back([&, p] {
      auto handle = open_process_handle(ckpt, p);
      if (!handle.ok()) return;
      (*handle)->rewind();
      std::vector<std::byte> record(kRecordBytes);
      for (std::uint64_t i = 0; i < kStatePerProcess; ++i) {
        fill_record_payload(record, epoch, p * kStatePerProcess + i);
        if (!(*handle)->write_next(record).ok()) return;
      }
    });
  }
  for (auto& t : workers) t.join();
}

/// Restore and verify every process's state against epoch `epoch`.
std::uint64_t verify_checkpoint(const std::shared_ptr<ParallelFile>& ckpt,
                                std::uint64_t epoch) {
  std::uint64_t bad = 0;
  for (std::uint32_t p = 0; p < kProcesses; ++p) {
    auto handle = open_process_handle(ckpt, p);
    if (!handle.ok()) return kStatePerProcess * kProcesses;
    std::vector<std::byte> record(kRecordBytes);
    std::uint64_t i = 0;
    while ((*handle)->read_next(record).ok()) {
      if (!verify_record_payload(record, epoch, p * kStatePerProcess + i)) {
        ++bad;
      }
      ++i;
    }
  }
  return bad;
}

}  // namespace

int main() {
  // Device array: every spindle is a shadowed pair of fault-injectable
  // disks (the paper's expensive-but-instant recovery option).
  constexpr std::size_t kDevices = 4;
  constexpr std::uint64_t kDevBytes = 4 << 20;
  DeviceArray devices;
  std::vector<ShadowDevice*> pairs;
  for (std::size_t d = 0; d < kDevices; ++d) {
    auto primary = std::make_unique<FaultyDevice>(
        std::make_unique<RamDisk>("disk" + std::to_string(d), kDevBytes));
    auto shadow = std::make_unique<FaultyDevice>(
        std::make_unique<RamDisk>("shadow" + std::to_string(d), kDevBytes));
    auto pair =
        std::make_unique<ShadowDevice>(std::move(primary), std::move(shadow));
    pairs.push_back(pair.get());
    devices.add(std::move(pair));
  }

  auto fs = FileSystem::format(devices);
  if (!fs.ok()) fail("format", fs.error());

  CreateOptions opts;
  opts.name = "solver.ckpt";
  opts.organization = Organization::partitioned;  // one band per process
  opts.category = FileCategory::specialized;
  opts.record_bytes = kRecordBytes;
  opts.partitions = kProcesses;
  opts.capacity_records = kProcesses * kStatePerProcess;
  auto ckpt = (*fs)->create(opts);
  if (!ckpt.ok()) fail("create", ckpt.error());

  // Epoch 1 checkpoint.
  take_checkpoint(*ckpt, 1);
  std::printf("checkpoint 1 written (%llu records)\n",
              static_cast<unsigned long long>((*ckpt)->record_count()));

  // Disaster: device 2's primary dies between checkpoints.
  static_cast<FaultyDevice&>(pairs[2]->primary()).fail_now();
  std::printf("injected failure on disk2's primary\n");

  // Restart path: reads transparently fail over to the shadow.
  std::uint64_t bad = verify_checkpoint(*ckpt, 1);
  std::printf("restart from checkpoint 1 with a failed primary: %llu bad "
              "records (shadow served the slices)\n",
              static_cast<unsigned long long>(bad));

  // Epoch 2 checkpoint still lands (pair degraded but writable), then the
  // pair is resilvered onto a replacement drive.
  take_checkpoint(*ckpt, 2);
  auto copied =
      pairs[2]->resilver_primary(std::make_unique<RamDisk>("disk2b", kDevBytes));
  if (!copied.ok()) fail("resilver", copied.error());
  std::printf("resilvered disk2 onto a replacement (%llu bytes copied)\n",
              static_cast<unsigned long long>(*copied));

  bad = verify_checkpoint(*ckpt, 2);
  std::printf("verify checkpoint 2 after resilver: %llu bad records\n",
              static_cast<unsigned long long>(bad));
  return bad == 0 ? 0 : 1;
}
