// Out-of-core external merge sort — the classic I/O-bound workload,
// composed entirely from the paper's organizations:
//
//   input   type S  (striped)      one sequential stream of unsorted keys
//   runs    type PS (blocked)      run r = partition r, written by the
//                                  run-formation worker that sorted it
//   output  type S  (striped)      merged stream, written through the
//                                  deferred-write (write-behind) pipeline
//
// Run formation sorts memory-sized chunks in parallel threads; the merge
// phase k-way-merges the runs through per-partition read-ahead readers.
#include <algorithm>
#include <cstdio>
#include <queue>
#include <thread>
#include <vector>

#include "core/buffered_io.hpp"
#include "core/file_system.hpp"
#include "core/global_view.hpp"
#include "core/handles.hpp"
#include "device/ram_disk.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

using namespace pio;

namespace {

constexpr std::uint64_t kKeys = 8192;
constexpr std::uint32_t kRuns = 4;              // memory holds kKeys/kRuns
constexpr std::uint64_t kRunKeys = kKeys / kRuns;
constexpr std::uint32_t kRecordBytes = 64;      // key in the first 8 bytes

void fail(const char* what, const Error& error) {
  std::fprintf(stderr, "%s: %s\n", what, error.to_string().c_str());
  std::exit(1);
}

std::uint64_t key_of(std::span<const std::byte> record) {
  return read_record_index(record);
}

}  // namespace

int main() {
  DeviceArray devices = make_ram_array(4, 16 << 20);
  auto fs = FileSystem::format(devices);
  if (!fs.ok()) fail("format", fs.error());

  CreateOptions opts;
  opts.record_bytes = kRecordBytes;
  opts.capacity_records = kKeys;

  opts.name = "input";
  opts.organization = Organization::sequential;
  auto input = (*fs)->create(opts);
  if (!input.ok()) fail("create input", input.error());

  opts.name = "runs";
  opts.organization = Organization::partitioned;
  opts.partitions = kRuns;
  auto runs = (*fs)->create(opts);
  if (!runs.ok()) fail("create runs", runs.error());

  opts.name = "output";
  opts.organization = Organization::sequential;
  opts.partitions = 1;
  auto output = (*fs)->create(opts);
  if (!output.ok()) fail("create output", output.error());

  // Generate the unsorted input; remember the key-sum for verification.
  std::uint64_t input_checksum = 0;
  {
    Rng rng{2024};
    GlobalSequentialView writer(*input);
    std::vector<std::byte> record(kRecordBytes);
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      const std::uint64_t key = rng.uniform_u64(1u << 30);
      input_checksum += key;
      stamp_record_index(record, key);
      if (auto st = writer.write_next(record); !st.ok()) {
        fail("generate", st.error());
      }
    }
  }

  // Phase 1 — run formation: worker r reads its chunk of the input,
  // sorts in memory, and writes run r (= partition r of the PS file).
  std::vector<std::thread> formers;
  for (std::uint32_t r = 0; r < kRuns; ++r) {
    formers.emplace_back([&, r] {
      std::vector<std::vector<std::byte>> chunk;
      chunk.reserve(kRunKeys);
      std::vector<std::byte> record(kRecordBytes);
      for (std::uint64_t i = 0; i < kRunKeys; ++i) {
        auto st = (*input)->read_record(r * kRunKeys + i, record);
        if (!st.ok()) return;
        chunk.emplace_back(record.begin(), record.end());
      }
      std::sort(chunk.begin(), chunk.end(),
                [](const auto& a, const auto& b) {
                  return key_of(a) < key_of(b);
                });
      auto handle = open_process_handle(*runs, r);
      if (!handle.ok()) return;
      for (const auto& rec : chunk) {
        if (!(*handle)->write_next(rec).ok()) return;
      }
    });
  }
  for (auto& t : formers) t.join();
  std::printf("phase 1: %u sorted runs of %llu keys each\n", kRuns,
              static_cast<unsigned long long>(kRunKeys));

  // Phase 2 — k-way merge: a read-ahead reader per run feeds a min-heap;
  // the winner streams to the output through deferred writes.
  {
    struct RunCursor {
      std::unique_ptr<BufferedPatternReader> reader;
      std::vector<std::byte> current;
      bool exhausted = false;
      void advance() {
        exhausted = !reader->next(current).ok();
      }
    };
    std::vector<RunCursor> cursors(kRuns);
    for (std::uint32_t r = 0; r < kRuns; ++r) {
      cursors[r].reader = std::make_unique<BufferedPatternReader>(
          *runs, Pattern::partitioned(kRunKeys, r), kRunKeys, /*depth=*/8);
      cursors[r].current.resize(kRecordBytes);
      cursors[r].advance();
    }
    auto greater = [&](std::uint32_t a, std::uint32_t b) {
      return key_of(cursors[a].current) > key_of(cursors[b].current);
    };
    std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                        decltype(greater)>
        heap(greater);
    for (std::uint32_t r = 0; r < kRuns; ++r) {
      if (!cursors[r].exhausted) heap.push(r);
    }
    BufferedPatternWriter writer(*output, Pattern::sequential(), /*depth=*/8);
    std::uint64_t merged = 0;
    while (!heap.empty()) {
      const std::uint32_t r = heap.top();
      heap.pop();
      if (auto st = writer.write_next(cursors[r].current); !st.ok()) {
        fail("merge write", st.error());
      }
      ++merged;
      cursors[r].advance();
      if (!cursors[r].exhausted) heap.push(r);
    }
    if (auto st = writer.drain(); !st.ok()) fail("drain", st.error());
    std::printf("phase 2: merged %llu keys\n",
                static_cast<unsigned long long>(merged));
  }

  // Verify: output is sorted and is a permutation (same count + key sum).
  GlobalSequentialView reader(*output);
  std::vector<std::byte> record(kRecordBytes);
  std::uint64_t previous = 0;
  std::uint64_t count = 0;
  std::uint64_t checksum = 0;
  bool sorted = true;
  while (reader.read_next(record).ok()) {
    const std::uint64_t key = key_of(record);
    if (count > 0 && key < previous) sorted = false;
    previous = key;
    checksum += key;
    ++count;
  }
  std::printf("verify: %llu keys, sorted=%s, checksum %s\n",
              static_cast<unsigned long long>(count), sorted ? "yes" : "NO",
              checksum == input_checksum ? "matches" : "MISMATCH");
  return (sorted && count == kKeys && checksum == input_checksum) ? 0 : 1;
}
