// Self-scheduled file as a multi-server work queue (§3.1: "Self-scheduled
// input is appropriate for algorithms which select the next available unit
// of work for processing, as in a queue with multiple servers").
//
// Tasks with wildly uneven costs are stored one per record.  We run the
// same workload twice with real threads:
//   static    — PS-style pre-partitioning: worker w gets a contiguous
//               quarter of the queue, stragglers and all
//   dynamic   — SS handles: every worker pulls the next record when free
// and report the load balance each achieves.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/file_system.hpp"
#include "core/handles.hpp"
#include "device/ram_disk.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

using namespace pio;

namespace {

constexpr std::uint32_t kWorkers = 4;
constexpr std::uint64_t kTasks = 400;
constexpr std::uint32_t kRecordBytes = 256;

void fail(const char* what, const Error& error) {
  std::fprintf(stderr, "%s: %s\n", what, error.to_string().c_str());
  std::exit(1);
}

/// "Process" a task for `units` microseconds.  Sleeping (rather than
/// burning CPU) lets the workers genuinely interleave even on one core,
/// so the schedule — not the host's core count — decides the outcome.
void process_task(std::uint64_t units) {
  std::this_thread::sleep_for(std::chrono::microseconds(units));
}

struct RunResult {
  std::vector<std::uint64_t> work_units;  // per worker
  double wall_ms;
};

RunResult run(std::shared_ptr<ParallelFile> file, bool dynamic) {
  file->ss_rewind();
  std::vector<std::uint64_t> done(kWorkers, 0);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (std::uint32_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      auto handle = dynamic
          ? open_process_handle(file, w)
          : open_pattern_handle(file, Organization::partitioned, w);
      if (!handle.ok()) return;
      std::vector<std::byte> record(kRecordBytes);
      while ((*handle)->read_next(record).ok()) {
        const std::uint64_t cost = read_record_index(record);
        process_task(cost);
        done[w] += cost;
      }
    });
  }
  for (auto& t : workers) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  return RunResult{
      done,
      std::chrono::duration<double, std::milli>(t1 - t0).count()};
}

void report(const char* name, const RunResult& r) {
  std::uint64_t total = 0, max = 0;
  for (auto u : r.work_units) {
    total += u;
    max = max < u ? u : max;
  }
  const double balance =
      static_cast<double>(total) / (kWorkers * static_cast<double>(max));
  std::printf("%-8s wall=%7.1f ms  load-balance=%.2f  per-worker units:",
              name, r.wall_ms, balance);
  for (auto u : r.work_units) {
    std::printf(" %llu", static_cast<unsigned long long>(u));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  DeviceArray devices = make_ram_array(4, 4 << 20);
  auto fs = FileSystem::format(devices);
  if (!fs.ok()) fail("format", fs.error());

  CreateOptions opts;
  opts.name = "queue";
  opts.organization = Organization::self_scheduled;
  opts.category = FileCategory::specialized;  // private to this program
  opts.record_bytes = kRecordBytes;
  opts.partitions = kWorkers;  // enables the static PS comparison view
  opts.capacity_records = kTasks;
  auto file = (*fs)->create(opts);
  if (!file.ok()) fail("create", file.error());

  // Fill the queue: bimodal task costs (10% of tasks are 20x heavier),
  // cost stored in the record itself.
  Rng rng{42};
  const auto costs = make_bimodal_task_costs(rng, kTasks, 50.0, 0.10, 20.0);
  {
    std::vector<std::byte> record(kRecordBytes);
    for (std::uint64_t i = 0; i < kTasks; ++i) {
      stamp_record_index(record, static_cast<std::uint64_t>(costs[i]));
      if (auto st = (*file)->write_record(i, record); !st.ok()) {
        fail("enqueue", st.error());
      }
    }
  }
  std::printf("queue: %llu tasks, 10%% are 20x heavier\n",
              static_cast<unsigned long long>(kTasks));

  report("static", run(*file, /*dynamic=*/false));
  report("dynamic", run(*file, /*dynamic=*/true));
  std::printf(
      "(dynamic = SS handles pulling the shared cursor; its max/mean load\n"
      " ratio stays near 1 regardless of where the heavy tasks landed)\n");
  return 0;
}
