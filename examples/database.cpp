// A miniature concurrent database over a GDA file — §3.2's "databases
// used by parallel programs" — combining the declustered layout (Livny's
// recommendation, §4), record-level locking, multi-record transactions,
// and the asynchronous I/O scheduler for a full-table audit scan.
//
// Accounts live one per record.  Teller threads run transfer transactions
// between random accounts while an auditor repeatedly proves the
// conservation invariant (total balance never changes).
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/file_system.hpp"
#include "core/io_scheduler.hpp"
#include "core/record_locks.hpp"
#include "device/ram_disk.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

using namespace pio;

namespace {

constexpr std::uint64_t kAccounts = 256;
constexpr std::uint64_t kInitialBalance = 1000;
constexpr std::uint32_t kTellers = 4;
constexpr int kTransfersPerTeller = 2000;
constexpr std::uint32_t kRecordBytes = 128;

void fail(const char* what, const Error& error) {
  std::fprintf(stderr, "%s: %s\n", what, error.to_string().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  DeviceArray devices = make_ram_array(8, 4 << 20);
  auto fs = FileSystem::format(devices);
  if (!fs.ok()) fail("format", fs.error());

  CreateOptions opts;
  opts.name = "accounts.db";
  opts.organization = Organization::global_direct;  // declustered by default
  opts.record_bytes = kRecordBytes;
  opts.capacity_records = kAccounts;
  auto file = (*fs)->create(opts);
  if (!file.ok()) fail("create", file.error());

  LockedDirectFile db(*file);

  // Seed the table.
  {
    std::vector<std::byte> rec(kRecordBytes);
    for (std::uint64_t a = 0; a < kAccounts; ++a) {
      stamp_record_index(rec, kInitialBalance);
      if (auto st = db.write(a, rec); !st.ok()) fail("seed", st.error());
    }
  }

  // Tellers: random transfers, each a two-record transaction.
  std::atomic<std::uint64_t> committed{0};
  std::atomic<bool> stop_auditor{false};
  std::atomic<std::uint64_t> audits_ok{0}, audits_bad{0};

  std::thread auditor([&] {
    // A record-at-a-time scan is NOT a consistent snapshot (a transfer
    // straddling the scan frontier is counted once or twice), so the audit
    // runs as a full-table transaction: every record locked, one point in
    // time.  Transfers conserve balance, so the sum must always match.
    std::vector<std::uint64_t> all(kAccounts);
    for (std::uint64_t a = 0; a < kAccounts; ++a) all[a] = a;
    while (!stop_auditor.load(std::memory_order_acquire)) {
      std::uint64_t sum = 0;
      auto st = db.transact(all, [&](std::span<std::vector<std::byte>> recs) {
        sum = 0;
        for (const auto& rec : recs) sum += read_record_index(rec);
      });
      if (!st.ok()) return;
      (sum == kAccounts * kInitialBalance ? audits_ok : audits_bad)++;
    }
  });

  std::vector<std::thread> tellers;
  for (std::uint32_t t = 0; t < kTellers; ++t) {
    tellers.emplace_back([&, t] {
      Rng rng{1000 + t};
      for (int i = 0; i < kTransfersPerTeller; ++i) {
        const std::uint64_t from = rng.uniform_u64(kAccounts);
        std::uint64_t to = rng.uniform_u64(kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        const std::uint64_t amount = 1 + rng.uniform_u64(50);
        auto st = db.transact(
            {from, to}, [&](std::span<std::vector<std::byte>> recs) {
              // transact() sorts ascending; map back to from/to.
              auto& rec_from = from < to ? recs[0] : recs[1];
              auto& rec_to = from < to ? recs[1] : recs[0];
              const std::uint64_t balance = read_record_index(rec_from);
              if (balance < amount) return;  // declined, still atomic
              stamp_record_index(rec_from, balance - amount);
              stamp_record_index(rec_to, read_record_index(rec_to) + amount);
            });
        if (st.ok()) ++committed;
      }
    });
  }
  for (auto& th : tellers) th.join();
  stop_auditor.store(true, std::memory_order_release);
  auditor.join();

  std::printf("committed %llu transfer transactions from %u tellers\n",
              static_cast<unsigned long long>(committed.load()), kTellers);
  std::printf("concurrent audits: %llu consistent, %llu inconsistent\n",
              static_cast<unsigned long long>(audits_ok.load()),
              static_cast<unsigned long long>(audits_bad.load()));

  // Final report: bulk scan through the asynchronous I/O scheduler (all
  // devices in parallel), then verify conservation one last time.
  IoScheduler io(devices);
  std::vector<std::byte> table(kAccounts * kRecordBytes);
  IoBatch batch;
  io.read_records(**file, 0, kAccounts, table, batch);
  if (auto st = batch.wait(); !st.ok()) fail("scan", st.error());
  std::uint64_t total = 0;
  std::uint64_t min_bal = UINT64_MAX, max_bal = 0;
  for (std::uint64_t a = 0; a < kAccounts; ++a) {
    const std::uint64_t balance = read_record_index(
        std::span<const std::byte>(table.data() + a * kRecordBytes, 8));
    total += balance;
    min_bal = std::min(min_bal, balance);
    max_bal = std::max(max_bal, balance);
  }
  std::printf("final: total=%llu (expected %llu), balances in [%llu, %llu]\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(kAccounts * kInitialBalance),
              static_cast<unsigned long long>(min_bal),
              static_cast<unsigned long long>(max_bal));
  const bool conserved = total == kAccounts * kInitialBalance;
  const bool audits_clean = audits_bad.load() == 0;
  return conserved && audits_clean ? 0 : 1;
}
