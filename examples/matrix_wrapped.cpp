// Wrapped matrix storage — the paper's motivating use for the IS
// organization (§3.1: "This organization would be useful for wrapped
// storage of a matrix, for example").
//
// A dense matrix is stored one row per record, rows dealt round-robin to P
// processes (wrapped mapping, the classic load-balance trick for
// triangular work).  Each worker thread relaxes its own rows with a Jacobi
// step, writing results to a second IS file.  A sequential post-processor
// then checks the result through the global view — it sees plain row
// order, unaware of the wrapping.
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/file_system.hpp"
#include "core/global_view.hpp"
#include "core/handles.hpp"
#include "device/ram_disk.hpp"

using namespace pio;

namespace {

constexpr std::uint32_t kN = 256;        // matrix dimension
constexpr std::uint32_t kProcesses = 4;
constexpr std::uint32_t kRowBytes = kN * sizeof(double);

std::span<const std::byte> row_bytes(const std::vector<double>& row) {
  return std::as_bytes(std::span<const double>(row));
}

void fail(const char* what, const Error& error) {
  std::fprintf(stderr, "%s: %s\n", what, error.to_string().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  DeviceArray devices = make_ram_array(kProcesses, 16 << 20);
  auto fs = FileSystem::format(devices);
  if (!fs.ok()) fail("format", fs.error());

  CreateOptions opts;
  opts.organization = Organization::interleaved;
  opts.record_bytes = kRowBytes;
  opts.records_per_block = 1;   // one row per block: row-wrapped
  opts.partitions = kProcesses;
  opts.capacity_records = kN;

  opts.name = "A.mat";
  auto a = (*fs)->create(opts);
  if (!a.ok()) fail("create A", a.error());
  opts.name = "B.mat";
  auto b = (*fs)->create(opts);
  if (!b.ok()) fail("create B", b.error());

  // Sequential producer fills A through the global view: row i of the
  // discrete Laplace test problem u''=f with u(x)=sin(pi x) target.
  {
    GlobalSequentialView writer(*a);
    std::vector<double> row(kN);
    for (std::uint32_t i = 0; i < kN; ++i) {
      for (std::uint32_t j = 0; j < kN; ++j) {
        row[j] = i == j ? 2.0 : (j + 1 == i || i + 1 == j ? -1.0 : 0.0);
      }
      if (auto st = writer.write_next(row_bytes(row)); !st.ok()) {
        fail("write A", st.error());
      }
    }
  }

  // Parallel phase: each process sweeps ITS wrapped rows (rank, rank+P,
  // ...), computing row sums as a stand-in kernel and writing the result
  // row to B with the same wrapped pattern.
  std::vector<std::thread> workers;
  for (std::uint32_t p = 0; p < kProcesses; ++p) {
    workers.emplace_back([&, p] {
      auto in = open_process_handle(*a, p);
      auto out = open_process_handle(*b, p);
      if (!in.ok() || !out.ok()) return;
      std::vector<double> row(kN), result(kN);
      while ((*in)->read_next(std::as_writable_bytes(std::span<double>(row)))
                 .ok()) {
        const std::uint64_t i = (*in)->last_record();
        // One Jacobi-like transform of the row (kernel is illustrative).
        for (std::uint32_t j = 0; j < kN; ++j) {
          result[j] = 0.5 * row[j] + static_cast<double>(i);
        }
        if (!(*out)->write_next(row_bytes(result)).ok()) return;
      }
    });
  }
  for (auto& t : workers) t.join();
  std::printf("parallel sweep complete: %llu rows through %u processes\n",
              static_cast<unsigned long long>((*b)->record_count()),
              kProcesses);

  // Sequential consumer: the global view hides the wrapping entirely.
  GlobalSequentialView reader(*b);
  std::vector<double> row(kN);
  std::uint64_t i = 0;
  std::uint64_t errors = 0;
  while (reader.read_next(std::as_writable_bytes(std::span<double>(row))).ok()) {
    // Row i's diagonal entry must be 0.5*2 + i = 1 + i.
    const double expect = 1.0 + static_cast<double>(i);
    if (std::fabs(row[i] - expect) > 1e-12) ++errors;
    ++i;
  }
  std::printf("sequential check: %llu rows in plain order, %llu errors\n",
              static_cast<unsigned long long>(i),
              static_cast<unsigned long long>(errors));
  return errors == 0 ? 0 : 1;
}
