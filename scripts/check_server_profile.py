#!/usr/bin/env python3
"""Gate the server stage profile on queue_wait staying a minority share.

Reads the BENCH_server_profile.json written by `bench_ablation_server
--profile` and asserts that, at the highest client count measured, the
queue_wait stage accounts for less than THRESHOLD of end-to-end latency.

queue_wait is the time a request spends parked on a dispatcher shard
between admission and pickup.  With sharded queues and non-blocking
dispatch it is a few percent even at full client load; if it climbs back
toward a majority share, dispatch is serializing again (the flat-ceiling
regression this check exists to catch).

Usage: check_server_profile.py [profile.json] [--threshold=0.5]
Exits non-zero on violation or malformed input.
"""

import json
import sys

THRESHOLD = 0.5


def main(argv):
    path = "BENCH_server_profile.json"
    threshold = THRESHOLD
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            path = arg

    with open(path) as f:
        doc = json.load(f)

    runs = doc.get("runs", [])
    if not runs:
        print(f"check_server_profile: no runs in {path}", file=sys.stderr)
        return 1

    max_clients = max(run.get("clients", 0) for run in runs)
    checked = 0
    failed = 0
    for run in runs:
        if run.get("clients", 0) != max_clients:
            continue
        stages = run.get("profile", {}).get("stages", [])
        shares = {s.get("stage"): s.get("share", 0.0) for s in stages}
        if "queue_wait" not in shares:
            print(
                f"check_server_profile: run {run.get('name')!r} has no "
                "queue_wait stage",
                file=sys.stderr,
            )
            return 1
        share = shares["queue_wait"]
        label = (
            f"clients={run.get('clients')} "
            f"dispatchers={run.get('dispatchers', '?')}"
        )
        verdict = "ok" if share < threshold else "FAIL"
        print(
            f"  {label}: queue_wait share {share:.3f} "
            f"(threshold {threshold}) {verdict}"
        )
        checked += 1
        if share >= threshold:
            failed += 1

    if checked == 0:
        print(
            f"check_server_profile: no runs at clients={max_clients}",
            file=sys.stderr,
        )
        return 1
    if failed:
        print(
            f"check_server_profile: {failed}/{checked} runs exceed the "
            f"queue_wait share threshold — dispatch is serializing again",
            file=sys.stderr,
        )
        return 1
    print(
        f"check_server_profile: queue_wait share < {threshold} on all "
        f"{checked} run(s) at {max_clients} clients"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
