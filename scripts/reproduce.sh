#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, run every
# experiment benchmark, and leave the transcripts in test_output.txt and
# bench_output.txt (the same artifacts EXPERIMENTS.md was written from).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/bench_*; do
  "$b"
done 2>&1 | tee bench_output.txt

echo
echo "Done.  Compare against EXPERIMENTS.md (simulated numbers are"
echo "deterministic and should match exactly; wall-clock columns vary)."
