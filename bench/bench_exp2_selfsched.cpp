// EXP2 (§4 ¶2): self-scheduled files need "proper synchronization without
// unduly serializing access ... file pointers can be adjusted and buffer
// areas reserved early in an I/O call, thereby allowing the next call from
// another process to proceed before the actual data transfer from the
// first call has completed."
//
// Two SS protocols over the same striped file:
//   serialized  — the shared file pointer is held across the whole transfer
//   overlapped  — the pointer is claimed and released immediately (early
//                 adjustment); transfers proceed concurrently
//
// Expected shape: serialized throughput is flat in the number of
// processes; overlapped scales until the disks saturate.
#include "bench_util.hpp"
#include "layout/layout.hpp"
#include "sim/resource.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

constexpr std::uint64_t kRecords = 400;
constexpr std::uint64_t kRecordBytes = 2 * kTrack;
constexpr double kComputePerRecord = 0.004;  // 4 ms processing per record
constexpr double kPointerUpdate = 50e-6;     // cheap critical section

struct SsState {
  sim::Resource pointer_lock;
  std::uint64_t next = 0;
  explicit SsState(sim::Engine& eng) : pointer_lock(eng, 1) {}
};

sim::Task striped_record_io(sim::Engine& eng, SimDiskArray& disks,
                            const StripedLayout& layout, std::uint64_t record) {
  std::vector<DiskSegment> segs;
  for (const Segment& s : layout.map(record * kRecordBytes, kRecordBytes)) {
    segs.push_back(DiskSegment{s.device, s.offset, s.length});
  }
  co_await parallel_io(eng, disks, std::move(segs));
}

sim::Task ss_worker(sim::Engine& eng, SimDiskArray& disks,
                    const StripedLayout& layout, SsState& state,
                    bool overlapped, sim::WaitGroup& wg) {
  for (;;) {
    co_await state.pointer_lock.acquire();
    if (state.next >= kRecords) {
      state.pointer_lock.release();
      break;
    }
    const std::uint64_t record = state.next++;
    co_await eng.delay(kPointerUpdate);
    if (overlapped) {
      // Early pointer adjustment: release before the transfer.
      state.pointer_lock.release();
      co_await striped_record_io(eng, disks, layout, record);
    } else {
      // Hold the pointer across the transfer (the naive protocol).
      co_await striped_record_io(eng, disks, layout, record);
      state.pointer_lock.release();
    }
    co_await eng.delay(kComputePerRecord);
  }
  wg.done();
}

void run_ss(benchmark::State& state, bool overlapped) {
  const auto processes = static_cast<std::size_t>(state.range(0));
  const std::size_t devices = 8;
  double elapsed = 0;
  for (auto _ : state) {
    sim::Engine eng;
    SimDiskArray disks(eng, devices);
    StripedLayout layout(devices, kTrack);
    SsState ss(eng);
    sim::WaitGroup wg(eng);
    wg.add(processes);
    for (std::size_t p = 0; p < processes; ++p) {
      eng.spawn(ss_worker(eng, disks, layout, ss, overlapped, wg));
    }
    elapsed = eng.run();
  }
  pio::bench::report_sim(state, elapsed, kRecords * kRecordBytes);
  state.counters["records_per_s"] =
      static_cast<double>(kRecords) / elapsed;
}

void BM_SelfScheduled_Serialized(benchmark::State& state) {
  run_ss(state, /*overlapped=*/false);
}
void BM_SelfScheduled_Overlapped(benchmark::State& state) {
  run_ss(state, /*overlapped=*/true);
}

}  // namespace

BENCHMARK(BM_SelfScheduled_Serialized)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->ArgNames({"processes"});
BENCHMARK(BM_SelfScheduled_Overlapped)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->ArgNames({"processes"});

PIO_BENCH_MAIN(
    "EXP2: self-scheduled synchronization protocols (paper §4)",
    "SS read throughput vs processes on an 8-disk striped file.  The\n"
    "'serialized' protocol holds the shared file pointer across each\n"
    "transfer; 'overlapped' adjusts the pointer early (the paper's remedy).")
