// EXTENSION (paper §6): access methods over organizations.  Once strided
// access methods exist (access_methods.hpp), the classic collective-I/O
// question follows: should P processes each issue their fine-grained
// strided requests directly, or read the covering extent contiguously and
// redistribute in memory (two-phase I/O)?
//
// Setup: P=8 ranks on D=8 disks; rank r wants records r, r+P, r+2P, ...
// of a striped file (the worst-case fine interleave).
//   direct     — each rank issues its own strided record reads
//   two-phase  — ranks cooperatively read contiguous 1/P slices with large
//                requests, then exchange in memory (charged at a 1989-era
//                copy rate of 20 MB/s)
//
// Expected shape: two-phase wins decisively for records below the stripe
// unit (positioning per record dominates) and loses its edge as records
// grow to track size, where direct requests are already efficient.
#include "bench_util.hpp"
#include "layout/layout.hpp"
#include "workload/sim_process.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

constexpr std::size_t kRanks = 8;
constexpr std::size_t kDevices = 8;
constexpr std::uint64_t kFileBytes = 12ull << 20;
constexpr double kMemCopyRate = 20e6;  // bytes/s, era-appropriate

double run_direct(std::uint64_t record_bytes) {
  sim::Engine eng;
  SimDiskArray disks(eng, kDevices);
  StripedLayout layout(kDevices, kTrack);
  const std::uint64_t records = kFileBytes / record_bytes;
  std::vector<std::vector<SimOp>> ops;
  for (std::size_t r = 0; r < kRanks; ++r) {
    Pattern pat = Pattern::interleaved(1, kRanks, static_cast<std::uint32_t>(r));
    ops.push_back(pattern_ops(pat, pat.visits_below(records),
                              static_cast<std::uint32_t>(record_bytes), 1,
                              0.0));
  }
  return run_processes(eng, disks, layout, std::move(ops));
}

double run_two_phase(std::uint64_t record_bytes) {
  sim::Engine eng;
  SimDiskArray disks(eng, kDevices);
  StripedLayout layout(kDevices, kTrack);
  // Phase 1: rank r reads the contiguous slice [r, r+1) * kFileBytes/P in
  // 8-track requests.
  const std::uint64_t slice = kFileBytes / kRanks;
  std::vector<std::vector<SimOp>> ops;
  for (std::size_t r = 0; r < kRanks; ++r) {
    std::vector<SimOp> mine;
    for (std::uint64_t off = 0; off < slice; off += 8 * kTrack) {
      const std::uint64_t len = std::min<std::uint64_t>(8 * kTrack, slice - off);
      mine.push_back(SimOp{r * slice + off, len, 0.0});
    }
    ops.push_back(std::move(mine));
  }
  double elapsed = run_processes(eng, disks, layout, std::move(ops));
  // Phase 2: all-to-all exchange.  Each rank copies everything it read
  // once (out) and receives its view once (in); with perfect overlap
  // across ranks the critical path is 2 * slice at the memory copy rate.
  (void)record_bytes;  // exchange volume is record-size independent
  elapsed += 2.0 * static_cast<double>(slice) / kMemCopyRate;
  return elapsed;
}

void BM_DirectStrided(benchmark::State& state) {
  const auto record_bytes = static_cast<std::uint64_t>(state.range(0));
  double t = 0;
  for (auto _ : state) t = run_direct(record_bytes);
  pio::bench::report_sim(state, t, kFileBytes);
}

void BM_TwoPhase(benchmark::State& state) {
  const auto record_bytes = static_cast<std::uint64_t>(state.range(0));
  double t = 0;
  for (auto _ : state) t = run_two_phase(record_bytes);
  pio::bench::report_sim(state, t, kFileBytes);
}

}  // namespace

BENCHMARK(BM_DirectStrided)
    ->Arg(512)->Arg(2048)->Arg(8192)->Arg(24576)->Arg(49152)
    ->ArgNames({"record_bytes"});
BENCHMARK(BM_TwoPhase)
    ->Arg(512)->Arg(2048)->Arg(8192)->Arg(24576)->Arg(49152)
    ->ArgNames({"record_bytes"});

PIO_BENCH_MAIN(
    "EXTENSION: direct strided access vs two-phase collective I/O",
    "8 ranks consume a 12 MB striped file with a fine interleave (rank r\n"
    "reads records r, r+8, ...).  Two-phase reads contiguously and\n"
    "exchanges in memory (20 MB/s copies).  Crossover expected as record\n"
    "size approaches the stripe unit.")
