// EXP1 (§4 ¶2): "For file types S and SS, disk striping can be used to
// spread the file across multiple drives, resulting in higher transfer
// rates."  A single process streams a type-S file; we sweep the device
// count and the stripe unit and report the simulated transfer rate.
//
// Expected shape: bandwidth scales with device count while the request
// spans all devices; once the stripe unit grows to the request size, each
// request touches one device and the parallelism vanishes (the ablation
// for the "units most appropriate for the I/O devices" remark).
#include "bench_util.hpp"
#include "layout/layout.hpp"
#include "workload/sim_process.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

// One process reads a 12 MB type-S file in fixed-size synchronous requests.
void BM_StripedRead(benchmark::State& state) {
  const auto devices = static_cast<std::size_t>(state.range(0));
  const auto unit = static_cast<std::uint64_t>(state.range(1));
  const std::uint64_t file_bytes = 12ull << 20;
  const std::uint64_t request = 8 * kTrack;  // 192 KB application reads
  double elapsed = 0;
  for (auto _ : state) {
    sim::Engine eng;
    SimDiskArray disks(eng, devices);
    StripedLayout layout(devices, unit);
    std::vector<SimOp> ops;
    for (std::uint64_t off = 0; off < file_bytes; off += request) {
      ops.push_back(SimOp{off, request, 0.0});
    }
    elapsed = run_processes(eng, disks, layout, {std::move(ops)});
  }
  pio::bench::report_sim(state, elapsed, file_bytes);
  state.counters["devices"] = static_cast<double>(devices);
}

// Writing is symmetric in the model; demonstrate with deferred writes off.
void BM_StripedWrite(benchmark::State& state) {
  const auto devices = static_cast<std::size_t>(state.range(0));
  const std::uint64_t file_bytes = 12ull << 20;
  const std::uint64_t request = 8 * kTrack;
  double elapsed = 0;
  for (auto _ : state) {
    sim::Engine eng;
    SimDiskArray disks(eng, devices);
    StripedLayout layout(devices, kTrack);
    std::vector<SimOp> ops;
    for (std::uint64_t off = 0; off < file_bytes; off += request) {
      ops.push_back(SimOp{off, request, 0.0});
    }
    elapsed = run_processes(eng, disks, layout, {std::move(ops)});
  }
  pio::bench::report_sim(state, elapsed, file_bytes);
}

}  // namespace

// Device sweep at the natural (track) stripe unit.
BENCHMARK(BM_StripedRead)
    ->ArgsProduct({{1, 2, 4, 8, 16, 32}, {static_cast<long>(kTrack)}})
    ->ArgNames({"devices", "unit"});

// Stripe-unit ablation at 8 devices: sub-track to request-sized units.
BENCHMARK(BM_StripedRead)
    ->ArgsProduct({{8},
                   {4096, static_cast<long>(kTrack), 2 * static_cast<long>(kTrack),
                    8 * static_cast<long>(kTrack), 16 * static_cast<long>(kTrack)}})
    ->ArgNames({"devices", "unit"});

BENCHMARK(BM_StripedWrite)
    ->ArgsProduct({{1, 4, 16}})
    ->ArgNames({"devices"});

PIO_BENCH_MAIN(
    "EXP1: disk striping raises S/SS transfer rates (paper §4)",
    "Single-process sequential read of a striped file: simulated bandwidth\n"
    "vs device count, plus the stripe-unit ablation (unit >= request size\n"
    "kills parallelism).")
