// EXP8 (§5 ¶3-4): reliability.  "Assuming a MTBF of 30,000 hours for each
// storage device, a file system containing 10 devices could be expected to
// fail every 3000 hours (about 3 times per year ...).  A system with 100
// devices ... would average more than one failure every two weeks."
// Parity-based correction [Kim] repairs striped groups; shadowing provides
// instant recovery at double the hardware.
//
// Reported here:
//   (1) analytic + Monte-Carlo array MTBF vs device count (the paper's
//       table row, including the 10- and 100-device examples)
//   (2) protected (parity/shadow) mean time to data loss vs repair window
//   (3) functional overhead of parity RMW and shadowing on writes, and
//       recovery (reconstruction) throughput, on RAM devices (real time)
#include <cstdio>

#include "bench_util.hpp"
#include "device/parity_group.hpp"
#include "device/ram_disk.hpp"
#include "device/shadow_device.hpp"
#include "reliability/mtbf.hpp"
#include "reliability/recovery.hpp"
#include "util/bytes.hpp"

namespace {

using namespace pio;

void print_mtbf_table() {
  std::printf("Array MTBF, %g h devices (paper's Winchester example):\n",
              kPaperDeviceMtbfHours);
  std::printf("%8s %14s %14s %16s %18s\n", "devices", "analytic_h",
              "montecarlo_h", "failures/year", "MTTDL(parity,24h)");
  Rng rng{2024};
  for (std::uint64_t n : {1ull, 2ull, 5ull, 10ull, 25ull, 50ull, 100ull, 200ull}) {
    const double analytic = series_mtbf_hours(kPaperDeviceMtbfHours, n);
    const auto mc = simulate_first_failure(rng, n, kPaperDeviceMtbfHours, 4000);
    const double fpy = failures_per_year(kPaperDeviceMtbfHours, n);
    const double mttdl =
        n >= 2 ? protected_mttdl_hours(kPaperDeviceMtbfHours, n, 24.0) : 0.0;
    std::printf("%8llu %14.0f %14.0f %16.2f %18.0f\n",
                static_cast<unsigned long long>(n), analytic, mc.mean(), fpy,
                mttdl);
  }
  std::printf(
      "\n(10 devices -> ~3000 h, ~3 failures/year; 100 devices -> 300 h,\n"
      " i.e. more than one failure every two weeks — §5's numbers.)\n\n");
}

// ---------------------------------------------------------- write overheads

constexpr std::size_t kIoBytes = 4096;
constexpr std::uint64_t kDevBytes = 1 << 22;

void BM_PlainWrite(benchmark::State& state) {
  RamDisk disk("d", kDevBytes);
  std::vector<std::byte> buf(kIoBytes);
  std::uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.write(off, buf).ok());
    off = (off + kIoBytes) % kDevBytes;
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * kIoBytes));
}

void BM_ShadowedWrite(benchmark::State& state) {
  ShadowDevice dev(std::make_unique<RamDisk>("p", kDevBytes),
                   std::make_unique<RamDisk>("s", kDevBytes));
  std::vector<std::byte> buf(kIoBytes);
  std::uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dev.write(off, buf).ok());
    off = (off + kIoBytes) % kDevBytes;
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * kIoBytes));
}

void BM_ParityGroupWrite(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<RamDisk>> disks;
  std::vector<BlockDevice*> data;
  for (std::size_t i = 0; i < width; ++i) {
    disks.push_back(std::make_unique<RamDisk>("d" + std::to_string(i), kDevBytes));
    data.push_back(disks.back().get());
  }
  RamDisk parity("p", kDevBytes);
  ParityGroup group(data, &parity);
  std::vector<std::byte> buf(kIoBytes);
  std::uint64_t off = 0;
  std::size_t dev = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.write(dev, off, buf).ok());
    dev = (dev + 1) % width;
    off = (off + kIoBytes) % kDevBytes;
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * kIoBytes));
  state.counters["rmw_per_write"] = 1.0;  // every write pays a parity RMW
}

void BM_ParityReconstruction(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<RamDisk>> disks;
  std::vector<BlockDevice*> data;
  for (std::size_t i = 0; i < width; ++i) {
    disks.push_back(std::make_unique<RamDisk>("d" + std::to_string(i), kDevBytes));
    data.push_back(disks.back().get());
  }
  RamDisk parity("p", kDevBytes);
  ParityGroup group(data, &parity);
  std::vector<std::byte> seed(kDevBytes);
  fill_record_payload(seed, 1, 1);
  for (std::size_t i = 0; i < width; ++i) {
    (void)disks[i]->write(0, seed);
  }
  (void)group.rebuild_parity();
  RamDisk replacement("r", kDevBytes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.reconstruct_data(0, replacement).ok());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * kDevBytes));
}

void BM_ShadowResilver(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ShadowDevice dev(std::make_unique<RamDisk>("p", kDevBytes),
                     std::make_unique<RamDisk>("s", kDevBytes));
    std::vector<std::byte> seed(kDevBytes);
    fill_record_payload(seed, 2, 2);
    (void)dev.write(0, seed);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        dev.resilver_primary(std::make_unique<RamDisk>("p2", kDevBytes)).ok());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * kDevBytes));
}

}  // namespace

BENCHMARK(BM_PlainWrite);
BENCHMARK(BM_ShadowedWrite);
BENCHMARK(BM_ParityGroupWrite)->Arg(4)->Arg(8)->ArgNames({"width"});
BENCHMARK(BM_ParityReconstruction)->Arg(4)->Arg(8)->ArgNames({"width"});
BENCHMARK(BM_ShadowResilver);

int main(int argc, char** argv) {
  pio::bench::banner(
      "EXP8: reliability of multi-device file systems (paper §5)",
      "Array MTBF table (analytic + Monte-Carlo), protected MTTDL, and the\n"
      "functional costs: parity RMW vs shadowed vs plain writes, and\n"
      "reconstruction/resilver throughput.");
  print_mtbf_table();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
