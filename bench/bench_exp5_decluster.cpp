// EXP5 (§4 ¶5): "Livny et al. conclude that declustering of files across
// multiple drives (disk striping) provides performance improvements in a
// database context, and that this is the preferred organization for most
// workloads.  They show that by splitting blocks across multiple drives
// rather than allocating whole blocks to individual drives, contention
// problems caused by non-uniform access patterns are reduced.  Kim arrives
// at similar conclusions."
//
// The database setting: many relations (files) on one device array, with
// transaction traffic skewed across relations (a hot table).  Each
// transaction scans a multi-block range of one relation.
//   clustered   — each relation placed contiguously on one drive
//                 (whole blocks to individual drives): hot relation =>
//                 hot drive
//   declustered — every relation striped across all drives: each scan
//                 transfers in parallel and the heat spreads
//
// Expected shape: declustered response time is lower and nearly flat in
// skew; clustered degrades as the hot relation's drive saturates.
#include "bench_util.hpp"
#include "layout/layout.hpp"
#include "sim/resource.hpp"
#include "util/rng.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

constexpr std::size_t kDevices = 8;
constexpr std::size_t kClients = 16;
constexpr std::size_t kRelations = 16;
constexpr std::uint64_t kRelationBytes = 2ull << 20;  // 2 MB per relation
constexpr std::uint64_t kScanBytes = 8 * kTrack;      // 192 KB range scan
constexpr std::uint64_t kScansPerClient = 30;
constexpr double kThink = 0.005;

struct Txn {
  std::size_t relation;
  std::uint64_t offset;  // within the relation
};

std::vector<Txn> make_txns(Rng& rng, double skew) {
  ZipfSampler zipf(kRelations, skew <= 0 ? 1e-9 : skew);
  std::vector<Txn> txns;
  for (std::uint64_t i = 0; i < kScansPerClient; ++i) {
    const auto rel = static_cast<std::size_t>(zipf(rng));
    const std::uint64_t offset =
        rng.uniform_u64(kRelationBytes / kScanBytes) * kScanBytes;
    txns.push_back(Txn{rel, offset});
  }
  return txns;
}

sim::Task client(sim::Engine& eng, SimDiskArray& disks, bool declustered,
                 std::vector<Txn> txns, OnlineStats& response,
                 sim::WaitGroup& wg) {
  for (const Txn& txn : txns) {
    co_await eng.delay(kThink);
    const double t0 = eng.now();
    std::vector<DiskSegment> segs;
    if (declustered) {
      // Relation striped over all drives (track units); relation r's data
      // starts at a per-drive base of r * (relation share).
      StripedLayout stripe(kDevices, kTrack);
      const std::uint64_t base = txn.relation * (kRelationBytes / kDevices);
      for (const Segment& s : stripe.map(txn.offset, kScanBytes)) {
        segs.push_back(DiskSegment{s.device, base + s.offset, s.length});
      }
    } else {
      // Relation contiguous on drive (relation mod D).
      const std::size_t dev = txn.relation % kDevices;
      const std::uint64_t base =
          (txn.relation / kDevices) * kRelationBytes;
      segs.push_back(DiskSegment{dev, base + txn.offset, kScanBytes});
    }
    co_await parallel_io(eng, disks, std::move(segs));
    response.add(eng.now() - t0);
  }
  wg.done();
}

void run_case(benchmark::State& state, bool declustered) {
  const double skew = static_cast<double>(state.range(0)) / 100.0;
  double elapsed = 0;
  OnlineStats response;
  double max_util = 0;
  for (auto _ : state) {
    response = OnlineStats{};
    sim::Engine eng;
    SimDiskArray disks(eng, kDevices);
    Rng rng{0xDB};  // identical transaction mix for both placements
    sim::WaitGroup wg(eng);
    wg.add(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      Rng client_rng = rng.split();
      eng.spawn(client(eng, disks, declustered, make_txns(client_rng, skew),
                       response, wg));
    }
    elapsed = eng.run();
    max_util = 0;
    for (std::size_t d = 0; d < kDevices; ++d) {
      max_util = std::max(max_util, disks[d].utilization());
    }
  }
  pio::bench::report_sim(state, elapsed,
                         kClients * kScansPerClient * kScanBytes);
  state.counters["skew"] = skew;
  state.counters["mean_resp_ms"] = response.mean() * 1e3;
  state.counters["p_max_resp_ms"] = response.max() * 1e3;
  state.counters["hottest_drive_util"] = max_util;
}

void BM_Clustered(benchmark::State& state) { run_case(state, false); }
void BM_Declustered(benchmark::State& state) { run_case(state, true); }

}  // namespace

BENCHMARK(BM_Clustered)
    ->Arg(0)->Arg(60)->Arg(100)->Arg(140)
    ->ArgNames({"skew_x100"});
BENCHMARK(BM_Declustered)
    ->Arg(0)->Arg(60)->Arg(100)->Arg(140)
    ->ArgNames({"skew_x100"});

PIO_BENCH_MAIN(
    "EXP5: declustering vs whole-block clustering under hot spots "
    "(paper §4, after Livny et al. and Kim)",
    "16 clients run 192 KB range scans over 16 relations on 8 drives, with\n"
    "Zipf-skewed relation popularity.  Clustered: relation-per-drive.\n"
    "Declustered: relations striped across all drives.  Reports response\n"
    "time and the hottest drive's utilization.")
