// ABLATION: disk service-time components.  DESIGN.md calls out the
// calibrated 1989 disk model; this bench isolates what each mechanical
// component (seek curve, rotational latency model, track switches)
// contributes to the headline EXP1 striping result, so readers can judge
// how conclusions depend on the model.
#include "bench_util.hpp"
#include "layout/layout.hpp"
#include "workload/sim_process.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

constexpr std::uint64_t kFileBytes = 12ull << 20;
constexpr std::uint64_t kRequest = 8 * kTrack;

double striped_read(std::size_t devices, DiskParams params) {
  sim::Engine eng;
  SimDiskArray disks(eng, devices, DiskGeometry{}, params);
  StripedLayout layout(devices, kTrack);
  std::vector<SimOp> ops;
  for (std::uint64_t off = 0; off < kFileBytes; off += kRequest) {
    ops.push_back(SimOp{off, kRequest, 0.0});
  }
  return run_processes(eng, disks, layout, {std::move(ops)});
}

enum class Variant : int {
  full = 0,           // default calibrated model
  no_rotation = 1,    // track-buffered controller (RotationModel::none)
  phase_exact = 2,    // deterministic platter phase
  no_seek = 3,        // zero-cost seeks
  no_track_switch = 4
};

DiskParams params_for(Variant v) {
  DiskParams p;
  switch (v) {
    case Variant::full:
      break;
    case Variant::no_rotation:
      p.rotation = RotationModel::none;
      break;
    case Variant::phase_exact:
      p.rotation = RotationModel::deterministic_phase;
      break;
    case Variant::no_seek:
      p.seek_fixed_s = 0;
      p.seek_per_sqrt_cyl_s = 0;
      break;
    case Variant::no_track_switch:
      p.track_switch_s = 0;
      break;
  }
  return p;
}

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::full: return "full";
    case Variant::no_rotation: return "no_rotation";
    case Variant::phase_exact: return "phase_exact";
    case Variant::no_seek: return "no_seek";
    case Variant::no_track_switch: return "no_track_switch";
  }
  return "?";
}

void BM_ModelVariant(benchmark::State& state) {
  const auto variant = static_cast<Variant>(state.range(0));
  const auto devices = static_cast<std::size_t>(state.range(1));
  double elapsed = 0;
  for (auto _ : state) {
    elapsed = striped_read(devices, params_for(variant));
  }
  pio::bench::report_sim(state, elapsed, kFileBytes);
  state.SetLabel(variant_name(variant));
  // Speedup over the same variant at one device.
  const double solo = striped_read(1, params_for(variant));
  state.counters["speedup_vs_1dev"] = solo / elapsed;
}

}  // namespace

BENCHMARK(BM_ModelVariant)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {4, 8}})
    ->ArgNames({"variant", "devices"});

PIO_BENCH_MAIN(
    "ABLATION: disk model components vs the EXP1 striping result",
    "Striped sequential read with individual mechanical costs removed.\n"
    "The striping speedup's SHAPE survives every variant; absolute\n"
    "bandwidth shifts with rotation/seek assumptions.")
