// ABLATION: device queue discipline (FIFO vs SCAN).  §4 leaves "the best
// ways to allocate space on the disks to minimize this [seek] problem" as
// open work; besides allocation (EXP4), the device itself can reorder —
// the elevator algorithm.  Sequential PS scans are self-ordering (FIFO
// round-robin already sweeps the platter), so the contrast case is the
// direct-access one: PDA processes reading random records within their
// partitions, queueing at a shared device from scattered cylinders.
#include "bench_util.hpp"
#include "layout/layout.hpp"
#include "sim/resource.hpp"
#include "util/rng.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

constexpr std::size_t kProcesses = 16;
constexpr std::uint64_t kReadsPerProcess = 24;
constexpr std::uint64_t kBlockBytes = 2 * kTrack;
constexpr std::uint64_t kBlocksPerPartition = 64;  // 3 MB partitions
constexpr double kCompute = 0.002;

sim::Task worker(sim::Engine& eng, SimDiskArray& disks, const Layout& layout,
                 std::size_t p, Rng rng, sim::WaitGroup& wg) {
  for (std::uint64_t i = 0; i < kReadsPerProcess; ++i) {
    // Exponential think times scramble arrival order; with deterministic
    // think times the closed loop self-sorts and FIFO accidentally sweeps.
    co_await eng.delay(rng.exponential(kCompute));
    // Random block within this process's partition (PDA access).
    const std::uint64_t block =
        p * kBlocksPerPartition + rng.uniform_u64(kBlocksPerPartition);
    std::vector<DiskSegment> segs;
    for (const Segment& s : layout.map(block * kBlockBytes, kBlockBytes)) {
      segs.push_back(DiskSegment{s.device, s.offset, s.length});
    }
    co_await parallel_io(eng, disks, std::move(segs));
  }
  wg.done();
}

void run_case(benchmark::State& state, QueueDiscipline discipline) {
  const auto devices = static_cast<std::size_t>(state.range(0));
  const std::uint64_t bytes = kProcesses * kReadsPerProcess * kBlockBytes;
  double elapsed = 0;
  double mean_seek = 0;
  for (auto _ : state) {
    sim::Engine eng;
    SimDiskArray disks(eng, devices, {}, {}, discipline);
    BlockedLayout layout(kProcesses, kBlocksPerPartition * kBlockBytes,
                         devices, PartitionPlacement::grouped);
    Rng rng{0x5CA0};  // identical access streams under both disciplines
    sim::WaitGroup wg(eng);
    wg.add(kProcesses);
    for (std::size_t p = 0; p < kProcesses; ++p) {
      eng.spawn(worker(eng, disks, layout, p, rng.split(), wg));
    }
    elapsed = eng.run();
    OnlineStats seeks;
    for (std::size_t d = 0; d < devices; ++d) seeks.merge(disks[d].seek_stats());
    mean_seek = seeks.mean();
  }
  pio::bench::report_sim(state, elapsed, bytes);
  state.counters["mean_seek_ms"] = mean_seek * 1e3;
}

void BM_Fifo(benchmark::State& state) {
  run_case(state, QueueDiscipline::fifo);
}
void BM_Scan(benchmark::State& state) {
  run_case(state, QueueDiscipline::scan);
}

}  // namespace

BENCHMARK(BM_Fifo)->Arg(8)->Arg(4)->Arg(2)->Arg(1)->ArgNames({"devices"});
BENCHMARK(BM_Scan)->Arg(8)->Arg(4)->Arg(2)->Arg(1)->ArgNames({"devices"});

PIO_BENCH_MAIN(
    "ABLATION: FIFO vs SCAN device scheduling under PDA sharing",
    "16 direct-access (PDA) processes issue random in-partition reads on\n"
    "shared devices.  SCAN (elevator) reorders the queue by cylinder and\n"
    "recovers seek interference that allocation alone cannot.")
