// EXP10 (§5 ¶2): partition-boundary overlap.  "One way of dealing with the
// problem is to replicate boundary data in both of the adjacent partitions
// in the file.  This will cause difficulties for the global view ...  An
// alternative is to cache boundary data in memory (if it will fit).  This
// would be helpful if more than one pass is made through the file."
//
// A k-pass stencil sweep over a partitioned file, P processes on P disks:
//   replicate — each partition stores its halo records too: every pass is
//               one contiguous scan, but the file is bigger
//   cache     — partitions store only interior records: pass 1 issues two
//               extra remote (neighbour-device) halo reads per process,
//               later passes find the halo in memory
//
// Expected shape: replication wins at 1 pass and small halos; caching wins
// as passes grow (its extra I/O is paid once) and as halos widen (the
// replicated file's extra volume is re-read every pass).
#include "bench_util.hpp"
#include "core/boundary.hpp"
#include "layout/layout.hpp"
#include "workload/sim_process.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

constexpr std::size_t kProcesses = 8;
constexpr std::uint64_t kRecordBytes = 4096;
constexpr std::uint64_t kInteriorRecords = 8192;  // 32 MB interior
constexpr double kComputePerRecord = 10e-6;

double run_replicated(std::uint32_t halo, int passes) {
  HaloPartitioning parts(kInteriorRecords, kProcesses, halo);
  sim::Engine eng;
  SimDiskArray disks(eng, kProcesses);
  // Stored file: contiguous per-partition regions, one per device.
  const std::uint64_t max_stored = parts.stored_count(1);  // widest partition
  BlockedLayout layout(kProcesses, max_stored * kRecordBytes, kProcesses);
  std::vector<std::vector<SimOp>> ops(kProcesses);
  for (std::size_t p = 0; p < kProcesses; ++p) {
    const std::uint64_t stored = parts.stored_count(static_cast<std::uint32_t>(p));
    for (int pass = 0; pass < passes; ++pass) {
      // One contiguous scan of the partition (track-sized transfers).
      const std::uint64_t bytes = stored * kRecordBytes;
      for (std::uint64_t off = 0; off < bytes; off += 8 * kTrack) {
        const std::uint64_t len = std::min<std::uint64_t>(8 * kTrack, bytes - off);
        ops[p].push_back(SimOp{p * max_stored * kRecordBytes + off, len,
                               kComputePerRecord * static_cast<double>(len) /
                                   kRecordBytes});
      }
    }
  }
  return run_processes(eng, disks, layout, std::move(ops));
}

double run_cached(std::uint32_t halo, int passes) {
  HaloPartitioning parts(kInteriorRecords, kProcesses, halo);
  sim::Engine eng;
  SimDiskArray disks(eng, kProcesses);
  const std::uint64_t per = kInteriorRecords / kProcesses;
  BlockedLayout layout(kProcesses, per * kRecordBytes, kProcesses);
  std::vector<std::vector<SimOp>> ops(kProcesses);
  for (std::size_t p = 0; p < kProcesses; ++p) {
    for (int pass = 0; pass < passes; ++pass) {
      if (pass == 0) {
        // First pass: fetch neighbour halos (small reads on the
        // neighbours' devices — extra seeks there).
        if (p > 0) {
          ops[p].push_back(SimOp{(p * per - halo) * kRecordBytes,
                                 halo * kRecordBytes, 0.0});
        }
        if (p + 1 < kProcesses) {
          ops[p].push_back(
              SimOp{(p + 1) * per * kRecordBytes, halo * kRecordBytes, 0.0});
        }
      }
      // Interior scan (halo now in memory: compute only costs stay).
      const std::uint64_t bytes = per * kRecordBytes;
      for (std::uint64_t off = 0; off < bytes; off += 8 * kTrack) {
        const std::uint64_t len = std::min<std::uint64_t>(8 * kTrack, bytes - off);
        ops[p].push_back(SimOp{p * per * kRecordBytes + off, len,
                               kComputePerRecord * static_cast<double>(len) /
                                   kRecordBytes});
      }
    }
  }
  return run_processes(eng, disks, layout, std::move(ops));
}

void BM_Replicated(benchmark::State& state) {
  const auto halo = static_cast<std::uint32_t>(state.range(0));
  const auto passes = static_cast<int>(state.range(1));
  double t = 0;
  for (auto _ : state) t = run_replicated(halo, passes);
  HaloPartitioning parts(kInteriorRecords, kProcesses, halo);
  pio::bench::report_sim(
      state, t,
      static_cast<std::uint64_t>(passes) * parts.total_stored() * kRecordBytes);
  state.counters["file_overhead_pct"] = (parts.overhead() - 1.0) * 100.0;
}

void BM_HaloCached(benchmark::State& state) {
  const auto halo = static_cast<std::uint32_t>(state.range(0));
  const auto passes = static_cast<int>(state.range(1));
  double t = 0;
  for (auto _ : state) t = run_cached(halo, passes);
  pio::bench::report_sim(state, t,
                         static_cast<std::uint64_t>(passes) *
                             kInteriorRecords * kRecordBytes);
  state.counters["cache_bytes_per_proc"] =
      static_cast<double>(2ull * halo * kRecordBytes);
}

}  // namespace

BENCHMARK(BM_Replicated)
    ->ArgsProduct({{16, 64, 256}, {1, 2, 4, 8}})
    ->ArgNames({"halo_records", "passes"});
BENCHMARK(BM_HaloCached)
    ->ArgsProduct({{16, 64, 256}, {1, 2, 4, 8}})
    ->ArgNames({"halo_records", "passes"});

PIO_BENCH_MAIN(
    "EXP10: partition-boundary overlap — replicate vs cache (paper §5)",
    "k-pass stencil over a PS file (8 processes, 8 disks).  'Replicated'\n"
    "stores halo records in both partitions (bigger file, re-read every\n"
    "pass); 'cached' fetches neighbour halos once and keeps them in\n"
    "memory.  Caching wins as passes and halo width grow.")
