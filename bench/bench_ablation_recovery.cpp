// ABLATION: online fault tolerance — what degraded service and live
// rebuild cost.  §5 motivates parity protection by MTBF arithmetic; this
// bench measures the runtime side of that bargain on throttled devices
// (fixed positioning charge per op, so the op-count arithmetic shows up
// in wall time):
//
//   * healthy vs degraded READ — reconstruction touches every survivor
//     plus parity instead of one device (expect ~Nx the device ops);
//   * healthy vs degraded WRITE — parity-only RMW vs the normal
//     read-modify-write pair;
//   * rebuild alone vs rebuild under foreground traffic — both
//     interference directions: how much the foreground slows the rebuild,
//     and (against BM_Read_Healthy) how much the rebuild steals from the
//     foreground.
//
// Counters: bytes_per_second (per-variant throughput), foreground_ops
// and foreground_MBps for the traffic mix, plus the reliability.* registry
// snapshot.  Honors --quick and --json=PATH (default BENCH_recovery.json).
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "device/faulty_device.hpp"
#include "device/parity_group.hpp"
#include "device/ram_disk.hpp"
#include "device/throttle_device.hpp"
#include "reliability/resilient_array.hpp"

namespace {

using namespace pio;

constexpr std::size_t kDataDevices = 3;
constexpr double kOpCostUs = 2.0;
constexpr std::size_t kIoBytes = 4096;

std::uint64_t device_capacity() {
  return pio::bench::quick_flag ? (256ull << 10) : (1ull << 20);
}

/// 3 data FaultyDevice(Throttled(RamDisk)) + throttled parity, parity
/// group, ResilientArray.  The throttle charges every op a fixed
/// positioning cost so reconstruction fan-out is visible in wall time.
struct Rig {
  DeviceArray array;
  std::unique_ptr<ThrottledDevice> parity;
  std::unique_ptr<ParityGroup> group;
  std::unique_ptr<ResilientArray> resilient;
  std::vector<FaultyDevice*> faulty;

  Rig() {
    const std::uint64_t cap = device_capacity();
    for (std::size_t d = 0; d < kDataDevices; ++d) {
      auto dev = std::make_unique<FaultyDevice>(std::make_unique<ThrottledDevice>(
          std::make_unique<RamDisk>("data" + std::to_string(d), cap),
          kOpCostUs));
      faulty.push_back(dev.get());
      array.add(std::move(dev));
    }
    parity = std::make_unique<ThrottledDevice>(
        std::make_unique<RamDisk>("parity", cap), kOpCostUs);
    group = std::make_unique<ParityGroup>(
        std::vector<BlockDevice*>{&array[0], &array[1], &array[2]},
        parity.get());
    ResilientOptions opts;
    opts.retry.base_backoff_us = 10;
    opts.retry.max_backoff_us = 200;
    resilient = std::make_unique<ResilientArray>(array, opts);
    auto st = resilient->protect_with_parity(*group, {0, 1, 2});
    if (!st.ok()) std::abort();
  }

  /// Seed every data device with a deterministic pattern (through the
  /// group so parity is consistent).
  void fill() {
    std::vector<std::byte> buf(kIoBytes);
    const std::uint64_t cap = device_capacity();
    for (std::size_t d = 0; d < kDataDevices; ++d) {
      for (std::uint64_t off = 0; off + kIoBytes <= cap; off += kIoBytes) {
        for (std::size_t i = 0; i < kIoBytes; ++i) {
          buf[i] = static_cast<std::byte>((d * 131 + off + i * 7) & 0xff);
        }
        auto st = group->write(d, off, buf);
        if (!st.ok()) std::abort();
      }
    }
  }
};

// ------------------------------------------------- degraded-service costs

void run_reads(benchmark::State& state, bool degraded) {
  Rig rig;
  rig.fill();
  if (degraded) rig.faulty[0]->fail_now();
  std::vector<std::byte> out(kIoBytes);
  const std::uint64_t cap = device_capacity();
  std::uint64_t off = 0;
  for (auto _ : state) {
    auto st = rig.resilient->read(0, off, out);
    if (!st.ok()) state.SkipWithError(st.error().to_string().c_str());
    off = (off + kIoBytes) % cap;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kIoBytes));
  pio::bench::report_registry(state);
}

void BM_Read_Healthy(benchmark::State& state) { run_reads(state, false); }
void BM_Read_Degraded(benchmark::State& state) { run_reads(state, true); }

void run_writes(benchmark::State& state, bool degraded) {
  Rig rig;
  rig.fill();
  if (degraded) rig.faulty[0]->fail_now();
  std::vector<std::byte> in(kIoBytes, std::byte{0x5a});
  const std::uint64_t cap = device_capacity();
  std::uint64_t off = 0;
  for (auto _ : state) {
    auto st = rig.resilient->write(0, off, in);
    if (!st.ok()) state.SkipWithError(st.error().to_string().c_str());
    off = (off + kIoBytes) % cap;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kIoBytes));
  pio::bench::report_registry(state);
}

void BM_Write_Healthy(benchmark::State& state) { run_writes(state, false); }
void BM_Write_Degraded(benchmark::State& state) { run_writes(state, true); }

// ------------------------------------------------------ rebuild vs traffic

/// One timed rebuild of device 0.  With `foreground` set, a thread keeps
/// reading the SURVIVING devices (and the failed one — degraded) for the
/// whole rebuild, so the two contend for the same throttled spindles.
void run_rebuild(benchmark::State& state, bool foreground) {
  const std::uint64_t cap = device_capacity();
  for (auto _ : state) {
    state.PauseTiming();
    Rig rig;
    rig.fill();
    rig.faulty[0]->fail_now();
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> fg_ops{0};
    std::thread traffic;
    if (foreground) {
      traffic = std::thread([&rig, &stop, &fg_ops] {
        std::vector<std::byte> out(kIoBytes);
        const std::uint64_t fg_cap = device_capacity();
        std::uint64_t off = 0;
        std::size_t d = 0;
        while (!stop.load(std::memory_order_acquire)) {
          if (rig.resilient->read(d, off, out).ok()) {
            fg_ops.fetch_add(1, std::memory_order_relaxed);
          }
          d = (d + 1) % kDataDevices;
          off = (off + kIoBytes) % fg_cap;
        }
      });
    }
    state.ResumeTiming();

    RebuildOptions options;
    options.chunk_bytes = 64 * 1024;
    FaultyDevice* failed = rig.faulty[0];
    options.on_complete = [failed] { failed->repair(); };
    auto st = rig.resilient->start_rebuild(0, failed->inner(), options);
    if (st.ok()) st = rig.resilient->wait_rebuild();
    if (!st.ok()) state.SkipWithError(st.error().to_string().c_str());

    state.PauseTiming();
    stop.store(true, std::memory_order_release);
    if (traffic.joinable()) traffic.join();
    state.counters["foreground_ops"] += static_cast<double>(fg_ops.load());
    state.ResumeTiming();
  }
  // bytes_per_second = rebuild bandwidth (the timed region is the rebuild).
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cap));
  pio::bench::report_registry(state);
}

void BM_Rebuild_Alone(benchmark::State& state) { run_rebuild(state, false); }
void BM_Rebuild_UnderTraffic(benchmark::State& state) {
  run_rebuild(state, true);
}

BENCHMARK(BM_Read_Healthy)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Read_Degraded)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Write_Healthy)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Write_Degraded)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Rebuild_Alone)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_Rebuild_UnderTraffic)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

PIO_BENCH_MAIN_JSON(
    "ABLATION: recovery — degraded service and online rebuild",
    "Degraded reads cost ~Nx a healthy read (reconstruction touches every "
    "survivor + parity); rebuild and foreground traffic steal throughput "
    "from each other but both make progress.",
    "BENCH_recovery.json")
