// ABLATION: dedicated I/O server vs direct library calls (§4's "dedicated
// I/O processor").  A compute process that does its own synchronous I/O
// serializes computation against positioning + transfer; handing requests
// to the IoServer lets computation overlap service, and multiple clients
// share the server's dispatchers and per-device scheduler workers.
//
//  direct_sync      — one caller: compute, then a synchronous read/write,
//                     strictly alternating (the baseline).
//  server_async/K   — K client threads, each with the same per-op compute,
//                     submitting through Client futures with a bounded
//                     window; Errc::overloaded retires the oldest future
//                     and retries (the canonical backpressure reaction).
//
// Devices charge a fixed positioning+transfer latency per operation by
// SLEEPING (device/latency_device.hpp), not busy-waiting like ThrottledDevice:
// device time is off-CPU, as with a real disk arm + DMA, so service can
// overlap compute even on single-core CI hosts.  Each op moves one track
// (a single stripe-unit segment), and consecutive ops rotate devices, so
// the server's per-device workers service different clients' requests
// concurrently.  Expected: aggregate server-mediated throughput with
// K >= 4 clients exceeds the direct synchronous single caller.
//
// Honors --quick (fewer ops per client), --json=PATH (default
// BENCH_server.json), and --profile (per-stage latency attribution: stage
// shares land in the benchmark counters and the full breakdown in
// BENCH_server_profile.json — the measurement behind the flat-ceiling
// diagnosis in ROADMAP item #2).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "device/latency_device.hpp"
#include "device/ram_disk.hpp"
#include "obs/report.hpp"
#include "obs/reqtrace.hpp"
#include "obs/sampler.hpp"
#include "server/client.hpp"
#include "server/io_server.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

// Geometry sized so one client CANNOT saturate the device array: with a
// window of 2 and 400 us per device op, a lone client sustains ~2 ops /
// 400 us ≈ 5k ops/s, while 8 devices serve up to 20k ops/s — so aggregate
// throughput has ~4x headroom to grow as clients are added, and the
// dispatch engine (not the devices) decides whether it is reached.
constexpr std::size_t kDevices = 8;
constexpr double kDeviceOpUs = 400.0;  // positioning + one-track transfer
constexpr double kComputeUs = 50.0;
constexpr std::uint32_t kRecordBytes = 4096;
constexpr std::uint64_t kRecordsPerOp = 6;  // 24 KiB: exactly one track
/// 171 tracks per client region keeps every region track-aligned and far
/// larger than the in-flight window (no overlapping extents in flight).
constexpr std::uint64_t kRegionRecords = 171 * kRecordsPerOp;
constexpr std::size_t kMaxClients = 8;
constexpr std::size_t kWindow = 2;
constexpr std::size_t kDefaultDispatchers = 4;

std::uint64_t ops_per_client() { return pio::bench::quick_flag ? 64 : 256; }

/// Busy-wait compute phase — unlike device time this IS host CPU work.
void compute() {
  const auto until =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(static_cast<std::int64_t>(kComputeUs * 1e3));
  while (std::chrono::steady_clock::now() < until) {
  }
}

struct Rig {
  DeviceArray devices;
  std::unique_ptr<FileSystem> fs;
  std::shared_ptr<ParallelFile> file;

  Rig() {
    for (std::size_t d = 0; d < kDevices; ++d) {
      devices.add(std::make_unique<LatencyDevice>(
          std::make_unique<RamDisk>("ram" + std::to_string(d), 16ull << 20),
          kDeviceOpUs));
    }
    fs = FileSystem::format(devices).take();
    CreateOptions opts;
    opts.name = "bench";
    opts.organization = Organization::sequential;
    opts.record_bytes = kRecordBytes;
    opts.capacity_records = kMaxClients * kRegionRecords;
    opts.stripe_unit = kTrack;
    file = fs->create(opts).take();
    // Pre-populate so reads move real data.
    std::vector<std::byte> fill(kRegionRecords * kRecordBytes, std::byte{0x42});
    for (std::size_t c = 0; c < kMaxClients; ++c) {
      (void)file->write_records(c * kRegionRecords, kRegionRecords, fill);
    }
  }
};

/// Client-scaling summary: aggregate MB/s per (clients, dispatchers) run,
/// printed as a table once the process exits so the scaling ratio — the
/// whole point of the sharded/non-blocking dispatch engine — is visible
/// without spelunking the JSON.
struct ScalingRow {
  std::size_t clients;
  std::size_t dispatchers;
  double mb_per_s;
};
std::vector<ScalingRow>& scaling_rows() {
  static std::vector<ScalingRow> rows;
  return rows;
}
void print_scaling_summary() {
  const auto& rows = scaling_rows();
  if (rows.empty()) return;
  double base = 0.0;  // 1-client aggregate at the default dispatcher count
  for (const ScalingRow& r : rows) {
    if (r.clients == 1 && base == 0.0) base = r.mb_per_s;
  }
  std::printf("\n--- client scaling (aggregate) ---\n");
  std::printf("%8s %12s %12s %10s\n", "clients", "dispatchers", "MB/s",
              "vs 1-cli");
  for (const ScalingRow& r : rows) {
    std::printf("%8zu %12zu %12.1f %9.2fx\n", r.clients, r.dispatchers,
                r.mb_per_s, base > 0.0 ? r.mb_per_s / base : 0.0);
  }
  std::printf("\n");
}
void record_scaling_run(std::size_t clients, std::size_t dispatchers,
                        double mb_per_s) {
  if (scaling_rows().empty()) std::atexit(print_scaling_summary);
  scaling_rows().push_back(ScalingRow{clients, dispatchers, mb_per_s});
}

/// Accumulated per-run stage breakdowns, rewritten to
/// BENCH_server_profile.json after every profiled run so the file is
/// complete whenever the process exits.
void record_profile_run(std::size_t clients, std::size_t dispatchers,
                        const std::string& profile_json) {
  static std::vector<std::string> runs;
  runs.push_back("{\"name\": \"server_async\", \"clients\": " +
                 std::to_string(clients) +
                 ", \"dispatchers\": " + std::to_string(dispatchers) +
                 ", \"profile\": " + profile_json + "}");
  std::FILE* f = std::fopen("BENCH_server_profile.json", "w");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\n  \"bench\": \"ablation_server stage breakdown\",\n"
               "  \"quick\": %s,\n  \"runs\": [",
               pio::bench::quick_flag ? "true" : "false");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::fprintf(f, "%s\n    %s", i == 0 ? "" : ",", runs[i].c_str());
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

/// Op i for the client owning `region`: alternating write/read over
/// track-sized slots; consecutive slots rotate devices, and the region
/// holds 171 slots, so every in-flight extent is distinct.
struct OpPlan {
  std::uint64_t first;
  bool is_write;
};
OpPlan plan_op(std::size_t region, std::uint64_t i) {
  const std::uint64_t slot = i % (kRegionRecords / kRecordsPerOp);
  return OpPlan{region * kRegionRecords + slot * kRecordsPerOp, i % 2 == 0};
}

void BM_DirectSync(benchmark::State& state) {
  Rig rig;
  std::vector<std::byte> buf(kRecordsPerOp * kRecordBytes, std::byte{7});
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < ops_per_client(); ++i) {
      compute();
      const OpPlan op = plan_op(0, i);
      const Status st =
          op.is_write
              ? rig.file->write_records(op.first, kRecordsPerOp, buf)
              : rig.file->read_records(op.first, kRecordsPerOp, buf);
      if (!st.ok()) state.SkipWithError(st.error().to_string().c_str());
      bytes += kRecordsPerOp * kRecordBytes;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.counters["clients"] = 1;
  pio::bench::report_registry(state);
}

void BM_ServerAsync(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  const std::size_t dispatchers = pio::bench::dispatchers_flag > 0
                                      ? pio::bench::dispatchers_flag
                                      : static_cast<std::size_t>(state.range(1));
  Rig rig;
  server::IoServerOptions options;
  options.dispatchers = dispatchers;
  options.queue_capacity = 128;
  options.max_inflight_per_session = kWindow;
  server::IoServer io_server(*rig.fs, rig.devices, options);

  // --profile: per-stage timelines plus the background utilization
  // sampler, reset per client count so each run's attribution is its own.
  obs::Profiler& profiler = obs::Profiler::global();
  std::unique_ptr<obs::UtilizationSampler> sampler;
  if (pio::bench::profile_flag) {
    profiler.reset();
    profiler.set_enabled(true);
    obs::SamplerOptions sampler_options;
    sampler_options.period_us = 2000;
    sampler = std::make_unique<obs::UtilizationSampler>(sampler_options);
    server::IoServer* srv = &io_server;
    sampler->add_series("server.inflight", [srv] {
      return static_cast<double>(srv->inflight());
    });
    sampler->add_series("server.dispatcher_busy", [srv, dispatchers] {
      return static_cast<double>(srv->busy_dispatchers()) /
             static_cast<double>(dispatchers);
    });
    sampler->add_series("server.queue_depth", [srv] {
      return static_cast<double>(srv->queue_depth());
    });
    sampler->add_series("iosched.worker_busy", [srv] {
      return static_cast<double>(srv->scheduler().busy_workers()) /
             static_cast<double>(kDevices);
    });
    sampler->start();
  }

  std::uint64_t bytes = 0;
  std::atomic<int> errors{0};
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = server::Client::connect(io_server);
        if (!client.ok()) {
          ++errors;
          return;
        }
        auto token = client->open("bench");
        if (!token.ok()) {
          ++errors;
          return;
        }
        std::vector<std::byte> buf(kRecordsPerOp * kRecordBytes,
                                   std::byte{9});
        std::deque<server::Future> window;
        for (std::uint64_t i = 0; i < ops_per_client(); ++i) {
          compute();
          const OpPlan op = plan_op(c, i);
          for (;;) {
            auto future =
                op.is_write
                    ? client->write_async(*token, op.first, kRecordsPerOp, buf)
                    : client->read_async(*token, op.first, kRecordsPerOp, buf);
            if (future.ok()) {
              window.push_back(*future);
              break;
            }
            if (future.code() != Errc::overloaded || window.empty()) {
              ++errors;
              return;
            }
            if (!window.front().wait().ok()) ++errors;
            window.pop_front();
          }
          while (window.size() >= kWindow) {
            if (!window.front().wait().ok()) ++errors;
            window.pop_front();
          }
        }
        for (server::Future& f : window) {
          if (!f.wait().ok()) ++errors;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    bytes += clients * ops_per_client() * kRecordsPerOp * kRecordBytes;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (errors.load() != 0) state.SkipWithError("client errors");
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.counters["clients"] = static_cast<double>(clients);
  state.counters["dispatchers"] = static_cast<double>(dispatchers);
  state.counters["server.steals"] = static_cast<double>(io_server.steals());
  if (wall_s > 0.0) {
    record_scaling_run(clients, dispatchers,
                       static_cast<double>(bytes) / wall_s / 1.0e6);
  }
  if (pio::bench::profile_flag) {
    sampler->stop();  // reads the scheduler; must precede server teardown
    profiler.set_enabled(false);
    const auto summaries = sampler->summary();
    const obs::ProfileReport report =
        obs::build_profile_report(profiler.snapshot());
    for (const obs::StageReport& s : report.stages) {
      state.counters["stage." + s.name + ".share"] = s.share;
      state.counters["stage." + s.name + ".p95_us"] = s.p95_us;
    }
    state.counters["profile.e2e_p95_us"] = report.e2e_p95_us;
    record_profile_run(clients, dispatchers,
                       obs::profile_to_json(report, &summaries));
    std::printf("%s", obs::profile_to_text(report, &summaries).c_str());
  }
  pio::bench::report_registry(state);
}

}  // namespace

// Real time everywhere: device latency is off-CPU sleep, so CPU-time
// throughput would flatter the synchronous baseline absurdly.
BENCHMARK(BM_DirectSync)->UseRealTime();
// Client scaling at the default dispatcher count, then a dispatcher sweep
// at full client load: non-blocking dispatch means even few dispatchers
// keep every device worker fed (`--dispatchers=N` pins the count for all
// runs instead).
BENCHMARK(BM_ServerAsync)
    ->Args({1, kDefaultDispatchers})
    ->Args({2, kDefaultDispatchers})
    ->Args({4, kDefaultDispatchers})
    ->Args({8, kDefaultDispatchers})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 8})
    ->ArgNames({"clients", "dispatchers"})
    ->UseRealTime();

PIO_BENCH_MAIN_JSON(
    "ABLATION: dedicated I/O server vs direct calls (paper §4)",
    "Alternating one-track (24 KiB) reads/writes with 50 us compute per op\n"
    "on devices charging 400 us off-CPU latency per operation.  direct_sync\n"
    "serializes compute against I/O in one caller; server_async/K overlaps\n"
    "K clients' compute with the server's dispatchers + per-device\n"
    "scheduler workers.  Expected: aggregate throughput at K >= 4 beats\n"
    "the direct caller.",
    "BENCH_server.json")
