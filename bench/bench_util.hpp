// Shared helpers for the experiment benches.  Each bench binary reproduces
// one experiment from DESIGN.md §4; simulated results are deterministic, so
// every benchmark runs a single iteration and reports virtual-time metrics
// through counters.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "device/sim_disk.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace pio::bench {

/// Harness-level knobs for scheduler-sensitive benches, set by
/// `--sched=fifo|scan|sstf` and `--max-merge=BYTES` on any bench binary
/// (stripped from argv before google-benchmark sees it).  Benches that
/// expose a "configured" variant read these.
inline std::string sched_flag = "scan";
inline std::uint64_t max_merge_flag = 256;

/// Consume the scheduler flags from argv (google-benchmark rejects
/// arguments it does not recognize).
inline void strip_sched_flags(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--sched=", 0) == 0) {
      sched_flag = std::string(arg.substr(8));
    } else if (arg.rfind("--max-merge=", 0) == 0) {
      max_merge_flag = std::strtoull(argv[i] + 12, nullptr, 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
}

/// Print the experiment banner (what the paper claims, what we measure).
inline void banner(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment, claim);
}

/// Attach the global metrics-registry snapshot (non-zero samples only) as
/// benchmark counters, so per-layer observability rides along with every
/// experiment's output.  Values are cumulative over the process.
inline void report_registry(benchmark::State& state) {
  for (const obs::MetricSample& s : obs::MetricsRegistry::global().snapshot()) {
    if (s.value != 0.0) state.counters[s.name] = s.value;
  }
}

/// Report simulated elapsed time and bandwidth through benchmark counters,
/// plus the observability registry snapshot.
inline void report_sim(benchmark::State& state, double sim_seconds,
                       std::uint64_t bytes) {
  state.counters["sim_s"] = sim_seconds;
  if (sim_seconds > 0) {
    state.counters["MB_per_s"] =
        static_cast<double>(bytes) / sim_seconds / 1.0e6;
  }
  report_registry(state);
}

/// 1989 track size: the natural transfer unit for these disks.
inline constexpr std::uint64_t kTrack = 24 * 1024;

}  // namespace pio::bench

/// Each bench provides PIO_BENCH_BANNER and uses this main.
#define PIO_BENCH_MAIN(experiment, claim)                        \
  int main(int argc, char** argv) {                              \
    pio::bench::banner(experiment, claim);                       \
    pio::bench::strip_sched_flags(argc, argv);                   \
    ::benchmark::Initialize(&argc, argv);                        \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {  \
      return 1;                                                  \
    }                                                            \
    ::benchmark::RunSpecifiedBenchmarks();                       \
    ::benchmark::Shutdown();                                     \
    return 0;                                                    \
  }
