// Shared helpers for the experiment benches.  Each bench binary reproduces
// one experiment from DESIGN.md §4; simulated results are deterministic, so
// every benchmark runs a single iteration and reports virtual-time metrics
// through counters.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "device/sim_disk.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace pio::bench {

/// Harness-level knobs for scheduler-sensitive benches, set by
/// `--sched=fifo|scan|sstf` and `--max-merge=BYTES` on any bench binary
/// (stripped from argv before google-benchmark sees it).  Benches that
/// expose a "configured" variant read these.
inline std::string sched_flag = "scan";
inline std::uint64_t max_merge_flag = 256;

/// Sieving/collective knobs (`--sieve-buf=BYTES`, `--aggregators=N`) for
/// the access-method benches.
inline std::uint64_t sieve_buf_flag = 256 * 1024;
inline std::uint32_t aggregators_flag = 4;

/// `--quick` trims problem sizes for CI smoke runs.  BENCHMARK()
/// registration happens before main parses flags, so benches must read
/// this at run time inside the benchmark body, not at registration.
inline bool quick_flag = false;

/// `--json=PATH` writes machine-readable results after the run ("" = off;
/// benches may default it via PIO_BENCH_MAIN_JSON).
inline std::string json_flag;

/// `--profile` enables request-lifecycle stage profiling in benches that
/// support it (bench_ablation_server): per-stage latency shares land in
/// the benchmark counters and a stage-breakdown JSON file.
inline bool profile_flag = false;

/// `--dispatchers=N` pins the server dispatcher count in
/// bench_ablation_server, overriding the per-run sweep argument (0 =
/// follow the sweep).
inline std::size_t dispatchers_flag = 0;

/// Cluster knobs (bench_ablation_cluster): `--data-servers=N` pins the
/// data-server count, overriding the 1/2/4/8 sweep (0 = follow the
/// sweep); `--distribution=block|cyclic|strided` picks the record
/// distribution the routed file is created with.
inline std::size_t data_servers_flag = 0;
inline std::string distribution_flag = "strided";

/// Consume the harness flags from argv (google-benchmark rejects
/// arguments it does not recognize).
inline void strip_sched_flags(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--sched=", 0) == 0) {
      sched_flag = std::string(arg.substr(8));
    } else if (arg.rfind("--max-merge=", 0) == 0) {
      max_merge_flag = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (arg.rfind("--sieve-buf=", 0) == 0) {
      sieve_buf_flag = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (arg.rfind("--aggregators=", 0) == 0) {
      aggregators_flag = static_cast<std::uint32_t>(
          std::strtoul(argv[i] + 14, nullptr, 10));
    } else if (arg == "--quick") {
      quick_flag = true;
    } else if (arg == "--profile") {
      profile_flag = true;
    } else if (arg.rfind("--dispatchers=", 0) == 0) {
      dispatchers_flag = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (arg.rfind("--data-servers=", 0) == 0) {
      data_servers_flag = std::strtoull(argv[i] + 15, nullptr, 10);
    } else if (arg.rfind("--distribution=", 0) == 0) {
      distribution_flag = std::string(arg.substr(15));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_flag = std::string(arg.substr(7));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
}

/// Print the experiment banner (what the paper claims, what we measure).
inline void banner(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment, claim);
}

/// Attach the global metrics-registry snapshot (non-zero samples only) as
/// benchmark counters, so per-layer observability rides along with every
/// experiment's output.  Values are cumulative over the process.
inline void report_registry(benchmark::State& state) {
  for (const obs::MetricSample& s : obs::MetricsRegistry::global().snapshot()) {
    if (s.value != 0.0) state.counters[s.name] = s.value;
  }
}

/// Report simulated elapsed time and bandwidth through benchmark counters,
/// plus the observability registry snapshot.
inline void report_sim(benchmark::State& state, double sim_seconds,
                       std::uint64_t bytes) {
  state.counters["sim_s"] = sim_seconds;
  if (sim_seconds > 0) {
    state.counters["MB_per_s"] =
        static_cast<double>(bytes) / sim_seconds / 1.0e6;
  }
  report_registry(state);
}

/// 1989 track size: the natural transfer unit for these disks.
inline constexpr std::uint64_t kTrack = 24 * 1024;

/// Console reporter that also collects every run (name, real time,
/// counters) so bench_main can emit a machine-readable JSON file.
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double real_time_ns = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.real_time_ns = run.GetAdjustedRealTime();
      for (const auto& [name, counter] : run.counters) {
        row.counters.emplace_back(name, counter.value);
      }
      rows_.push_back(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Row>& rows() const noexcept { return rows_; }

 private:
  std::vector<Row> rows_;
};

/// Minimal JSON string escaping (names are benchmark identifiers, but
/// quotes/backslashes must not break the file).
inline std::string json_escape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Write the collected runs as a flat JSON document:
/// {"bench": ..., "flags": {...}, "results": [{"name", "real_time_ns",
/// "counters": {...}}]}.
inline void write_json(const char* experiment,
                       const JsonCollectingReporter& reporter,
                       const std::string& path) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"%s\",\n  \"flags\": {\"sched\": \"%s\", "
               "\"max_merge\": %llu, \"sieve_buf\": %llu, \"aggregators\": "
               "%u, \"quick\": %s},\n  \"results\": [",
               json_escape(experiment).c_str(), json_escape(sched_flag).c_str(),
               static_cast<unsigned long long>(max_merge_flag),
               static_cast<unsigned long long>(sieve_buf_flag),
               aggregators_flag, quick_flag ? "true" : "false");
  bool first_row = true;
  for (const JsonCollectingReporter::Row& row : reporter.rows()) {
    std::fprintf(f, "%s\n    {\"name\": \"%s\", \"real_time_ns\": %.3f",
                 first_row ? "" : ",", json_escape(row.name).c_str(),
                 row.real_time_ns);
    first_row = false;
    std::fprintf(f, ", \"counters\": {");
    bool first_counter = true;
    for (const auto& [name, value] : row.counters) {
      std::fprintf(f, "%s\"%s\": %.6g", first_counter ? "" : ", ",
                   json_escape(name).c_str(), value);
      first_counter = false;
    }
    std::fprintf(f, "}}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("JSON results written to %s\n", path.c_str());
}

/// Shared main body: banner, flag stripping, run, optional JSON dump.
/// `default_json` seeds json_flag when the user did not pass --json=
/// (nullptr/"" keeps JSON off unless requested).
inline int bench_main(int argc, char** argv, const char* experiment,
                      const char* claim, const char* default_json) {
  banner(experiment, claim);
  strip_sched_flags(argc, argv);
  if (json_flag.empty() && default_json != nullptr) json_flag = default_json;
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCollectingReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  write_json(experiment, reporter, json_flag);
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace pio::bench

/// Each bench provides PIO_BENCH_BANNER and uses one of these mains.
/// Both accept --json=PATH; the _JSON variant also writes `default_json`
/// when no --json= flag is given.
#define PIO_BENCH_MAIN(experiment, claim)                              \
  int main(int argc, char** argv) {                                    \
    return pio::bench::bench_main(argc, argv, experiment, claim,       \
                                  nullptr);                            \
  }

#define PIO_BENCH_MAIN_JSON(experiment, claim, default_json)           \
  int main(int argc, char** argv) {                                    \
    return pio::bench::bench_main(argc, argv, experiment, claim,       \
                                  default_json);                       \
  }
