// EXP7 (§4 ¶7): "Most of the implementation strategies suggested above
// would also yield performance improvements for sequential programs which
// access the files using the global view.  One exception is the PS
// organization, in which all of the data would have to be read from the
// first disk, followed by all of the data from the second disk, etc., with
// no potential for parallelism.  IS type files would have a similar
// problem if block sizes approached or exceeded the buffer space
// available."
//
// A single sequential program reads the whole file through the global
// view in buffer-sized requests.  We compare striped / IS / PS layouts on
// 8 devices, then sweep the IS block size against a fixed buffer.
#include "bench_util.hpp"
#include "layout/layout.hpp"
#include "workload/sim_process.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

constexpr std::size_t kDevices = 8;
constexpr std::uint64_t kFileBytes = 24ull << 20;
constexpr std::uint64_t kBufferBytes = 8 * kTrack;  // 192 KB of buffer space

double global_read(std::unique_ptr<Layout> layout) {
  sim::Engine eng;
  SimDiskArray disks(eng, kDevices);
  std::vector<SimOp> ops;
  for (std::uint64_t off = 0; off < kFileBytes; off += kBufferBytes) {
    ops.push_back(SimOp{off, kBufferBytes, 0.0});
  }
  return run_processes(eng, disks, *layout, {std::move(ops)});
}

void BM_GlobalView_Striped(benchmark::State& state) {
  double elapsed = 0;
  for (auto _ : state) {
    elapsed = global_read(std::make_unique<StripedLayout>(kDevices, kTrack));
  }
  pio::bench::report_sim(state, elapsed, kFileBytes);
}

void BM_GlobalView_IS(benchmark::State& state) {
  const auto block = static_cast<std::uint64_t>(state.range(0)) * kTrack;
  double elapsed = 0;
  for (auto _ : state) {
    elapsed = global_read(make_interleaved_layout(kDevices, block));
  }
  pio::bench::report_sim(state, elapsed, kFileBytes);
  state.counters["block_over_buffer"] =
      static_cast<double>(block) / static_cast<double>(kBufferBytes);
}

void BM_GlobalView_PS(benchmark::State& state) {
  // 8 partitions, one per device: the global reader drains device 0, then
  // device 1, ... — "no potential for parallelism".
  double elapsed = 0;
  for (auto _ : state) {
    elapsed = global_read(std::make_unique<BlockedLayout>(
        kDevices, kFileBytes / kDevices, kDevices));
  }
  pio::bench::report_sim(state, elapsed, kFileBytes);
}

}  // namespace

BENCHMARK(BM_GlobalView_Striped);
// IS block sizes from 1 track up to 4x the buffer: parallelism collapses
// once a buffer-sized request fits inside one block.
BENCHMARK(BM_GlobalView_IS)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->ArgNames({"block_tracks"});
BENCHMARK(BM_GlobalView_PS);

PIO_BENCH_MAIN(
    "EXP7: sequential (global-view) access to parallel files (paper §4)",
    "One sequential program reads a 24 MB file on 8 disks in 192 KB\n"
    "requests.  Striped: full parallel transfer.  IS: parallel until block\n"
    "size reaches the buffer size.  PS: one device at a time.")
