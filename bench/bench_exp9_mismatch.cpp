// EXP9 (§5 ¶1): the internal-view mismatch.  "A serious mismatch occurs,
// for example, if a file created with a PS organization needs to be read
// later with an IS format.  One alternative would be to ... provide a
// software interface to present the alternate view ... but with degraded
// performance.  A related idea would be to force ... the consumer to use
// the global view ...  A third possibility is to supply conversion
// utilities to copy from one format to the other, but this could be
// expensive for large files."
//
// Four strategies for P processes consuming, IS-wise, a file stored PS:
//   native      — file already IS (the no-mismatch baseline)
//   cross_view  — IS pattern handles on the PS layout (degraded interface)
//   global_view — one sequential pass feeding the processes
//   convert     — PS -> IS copy, then the native IS read
#include "bench_util.hpp"
#include "layout/layout.hpp"
#include "workload/sim_process.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

constexpr std::size_t kProcesses = 8;
constexpr std::size_t kDevices = 8;
constexpr std::uint64_t kBlockBytes = 2 * kTrack;
constexpr std::uint32_t kRecordsPerBlock = 1;  // record == block here
constexpr double kCompute = 0.002;             // per-block processing

std::uint64_t blocks_for(std::uint64_t file_mb) {
  return (file_mb << 20) / kBlockBytes;
}

std::vector<std::vector<SimOp>> is_pattern_ops(std::uint64_t blocks) {
  std::vector<std::vector<SimOp>> ops;
  for (std::size_t p = 0; p < kProcesses; ++p) {
    Pattern pat = Pattern::interleaved(kRecordsPerBlock, kProcesses,
                                       static_cast<std::uint32_t>(p));
    ops.push_back(pattern_ops(pat, pat.visits_below(blocks),
                              static_cast<std::uint32_t>(kBlockBytes), 1,
                              kCompute));
  }
  return ops;
}

double run_native_is(std::uint64_t blocks) {
  sim::Engine eng;
  SimDiskArray disks(eng, kDevices);
  auto layout = make_interleaved_layout(kDevices, kBlockBytes);
  return run_processes(eng, disks, *layout, is_pattern_ops(blocks));
}

double run_cross_view(std::uint64_t blocks) {
  // Same IS access pattern, but the file sits in PS (blocked) layout.
  sim::Engine eng;
  SimDiskArray disks(eng, kDevices);
  BlockedLayout layout(kProcesses, (blocks / kProcesses) * kBlockBytes,
                       kDevices);
  return run_processes(eng, disks, layout, is_pattern_ops(blocks));
}

double run_global_view(std::uint64_t blocks) {
  // One sequential pass over the PS file (the "force the consumer to use
  // the global view" remedy): the reader then hands blocks to processes
  // in memory (their compute still happens, serialized behind the scan).
  sim::Engine eng;
  SimDiskArray disks(eng, kDevices);
  BlockedLayout layout(kProcesses, (blocks / kProcesses) * kBlockBytes,
                       kDevices);
  std::vector<SimOp> ops;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    ops.push_back(SimOp{b * kBlockBytes, kBlockBytes, kCompute});
  }
  return run_processes(eng, disks, layout, {std::move(ops)});
}

double run_convert_then_native(std::uint64_t blocks) {
  // Conversion pass: stream the PS file out and the IS file back in
  // (read + write through track-sized batches on separate arrays), then
  // run the native IS read on the converted file.
  double convert_time = 0;
  {
    sim::Engine eng;
    SimDiskArray src_disks(eng, kDevices);
    SimDiskArray dst_disks(eng, kDevices);
    BlockedLayout src(kProcesses, (blocks / kProcesses) * kBlockBytes, kDevices);
    auto dst = make_interleaved_layout(kDevices, kBlockBytes);
    sim::WaitGroup wg(eng);
    wg.add(2);
    // Reader and writer pipelined one block apart (double buffering).
    std::vector<SimOp> reads, writes;
    for (std::uint64_t b = 0; b < blocks; ++b) {
      reads.push_back(SimOp{b * kBlockBytes, kBlockBytes, 0.0});
      writes.push_back(SimOp{b * kBlockBytes, kBlockBytes, 0.0});
    }
    eng.spawn(run_process(eng, src_disks, src, std::move(reads), wg));
    eng.spawn(run_process(eng, dst_disks, *dst, std::move(writes), wg));
    convert_time = eng.run();
  }
  return convert_time + run_native_is(blocks);
}

void BM_NativeIS(benchmark::State& state) {
  const std::uint64_t blocks = blocks_for(state.range(0));
  double t = 0;
  for (auto _ : state) t = run_native_is(blocks);
  pio::bench::report_sim(state, t, blocks * kBlockBytes);
}
void BM_CrossViewOnPS(benchmark::State& state) {
  const std::uint64_t blocks = blocks_for(state.range(0));
  double t = 0;
  for (auto _ : state) t = run_cross_view(blocks);
  pio::bench::report_sim(state, t, blocks * kBlockBytes);
}
void BM_GlobalViewFallback(benchmark::State& state) {
  const std::uint64_t blocks = blocks_for(state.range(0));
  double t = 0;
  for (auto _ : state) t = run_global_view(blocks);
  pio::bench::report_sim(state, t, blocks * kBlockBytes);
}
void BM_ConvertThenNative(benchmark::State& state) {
  const std::uint64_t blocks = blocks_for(state.range(0));
  double t = 0;
  for (auto _ : state) t = run_convert_then_native(blocks);
  pio::bench::report_sim(state, t, blocks * kBlockBytes);
}

}  // namespace

BENCHMARK(BM_NativeIS)->Arg(8)->Arg(24)->Arg(48)->ArgNames({"file_MB"});
BENCHMARK(BM_CrossViewOnPS)->Arg(8)->Arg(24)->Arg(48)->ArgNames({"file_MB"});
BENCHMARK(BM_GlobalViewFallback)->Arg(8)->Arg(24)->Arg(48)->ArgNames({"file_MB"});
BENCHMARK(BM_ConvertThenNative)->Arg(8)->Arg(24)->Arg(48)->ArgNames({"file_MB"});

PIO_BENCH_MAIN(
    "EXP9: internal-view mismatch remedies (paper §5)",
    "8 processes consume a file IS-wise.  native = file stored IS;\n"
    "cross_view = IS pattern over a PS layout (degraded interface);\n"
    "global_view = sequential fallback; convert = PS->IS copy + native\n"
    "read.  Conversion amortizes only for repeated reads; one-shot\n"
    "consumers prefer the degraded view — the paper's 'each could be\n"
    "useful, depending on the situation'.")
