// FIG1: reproduce Figure 1 — the access patterns of the four sequential
// parallel-file organizations — as printed block-assignment tables, plus a
// functional throughput measurement of each organization's handle path.
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "core/file_system.hpp"
#include "core/handles.hpp"
#include "device/ram_disk.hpp"

namespace {

using namespace pio;

constexpr std::uint32_t kProcesses = 3;
constexpr std::uint64_t kBlocks = 9;

std::shared_ptr<ParallelFile> make_file(DeviceArray& devices, Organization org,
                                        LayoutKind layout) {
  FileMeta meta;
  meta.name = "fig1";
  meta.organization = org;
  meta.layout_kind = layout;
  meta.record_bytes = 64;
  meta.records_per_block = 1;
  meta.partitions = kProcesses;
  meta.capacity_records = kBlocks;
  return std::make_shared<ParallelFile>(
      meta, devices, std::vector<std::uint64_t>(devices.size(), 0));
}

/// Print which process touches each block, in global block order.
void print_pattern(const char* title, const std::vector<int>& owner) {
  std::printf("%-28s blocks:", title);
  for (std::size_t b = 0; b < owner.size(); ++b) {
    if (owner[b] >= 0) {
      std::printf(" P%d", owner[b] + 1);
    } else {
      std::printf("  ?");
    }
  }
  std::printf("\n");
}

void print_figure1() {
  std::vector<std::byte> rec(64);
  std::printf("Figure 1: internal organizations of sequential parallel files\n");
  std::printf("(blocks labelled with the process that accesses them; 3 processes)\n\n");

  {
    std::vector<int> owner(kBlocks, 0);
    print_pattern("(a) Sequential (S)", owner);
  }
  {
    std::vector<int> owner(kBlocks);
    DeviceArray arr = make_ram_array(3, 1 << 20);
    auto file = make_file(arr, Organization::partitioned, LayoutKind::blocked);
    for (std::uint64_t i = 0; i < kBlocks; ++i) {
      (void)file->write_record(i, rec);
    }
    for (std::uint32_t p = 0; p < kProcesses; ++p) {
      auto h = open_process_handle(file, p);
      while ((*h)->read_next(rec).ok()) {
        owner[(*h)->last_record()] = static_cast<int>(p);
      }
    }
    print_pattern("(b) Partitioned (PS)", owner);
  }
  {
    std::vector<int> owner(kBlocks);
    DeviceArray arr = make_ram_array(3, 1 << 20);
    auto file = make_file(arr, Organization::interleaved, LayoutKind::interleaved);
    for (std::uint64_t i = 0; i < kBlocks; ++i) {
      (void)file->write_record(i, rec);
    }
    for (std::uint32_t p = 0; p < kProcesses; ++p) {
      auto h = open_process_handle(file, p);
      while ((*h)->read_next(rec).ok()) {
        owner[(*h)->last_record()] = static_cast<int>(p);
      }
    }
    print_pattern("(c) Interleaved (IS)", owner);
  }
  {
    std::vector<int> owner(kBlocks, -1);
    DeviceArray arr = make_ram_array(3, 1 << 20);
    auto file = make_file(arr, Organization::self_scheduled, LayoutKind::striped);
    for (std::uint64_t i = 0; i < kBlocks; ++i) {
      (void)file->write_record(i, rec);
    }
    std::vector<std::unique_ptr<FileHandle>> handles;
    for (std::uint32_t p = 0; p < kProcesses; ++p) {
      auto h = open_process_handle(file, p);
      handles.push_back(std::move(*h));
    }
    // Issue order P1, P2, P3, P1, ... — arrival order decides ownership.
    for (std::uint64_t round = 0; round < kBlocks / kProcesses; ++round) {
      for (std::uint32_t p = 0; p < kProcesses; ++p) {
        if (handles[p]->read_next(rec).ok()) {
          owner[handles[p]->last_record()] = static_cast<int>(p);
        }
      }
    }
    print_pattern("(d) Self-scheduled (SS)", owner);
  }
  std::printf("\n");
}

// ------------------------------------------------- functional throughput

void BM_HandleReadThroughput(benchmark::State& state) {
  const auto org = static_cast<Organization>(state.range(0));
  const bool is_partitioned = org == Organization::partitioned ||
                              org == Organization::interleaved;
  DeviceArray devices = make_ram_array(4, 8 << 20);
  FileMeta meta;
  meta.name = "bench";
  meta.organization = org;
  meta.layout_kind = FileSystem::default_layout(org);
  meta.record_bytes = 512;
  meta.records_per_block = 4;
  meta.partitions = is_partitioned ? 4 : 1;
  meta.capacity_records = pio::bench::quick_flag ? 1024 : 8192;
  auto file = std::make_shared<ParallelFile>(
      meta, devices, std::vector<std::uint64_t>(4, 0));
  std::vector<std::byte> rec(512);
  for (std::uint64_t i = 0; i < meta.capacity_records; ++i) {
    (void)file->write_record(i, rec);
  }
  std::uint64_t records = 0;
  for (auto _ : state) {
    const std::uint32_t nproc = is_partitioned ? 4 : 1;
    for (std::uint32_t p = 0; p < nproc; ++p) {
      auto h = open_process_handle(file, p);
      (*h)->rewind();
      while ((*h)->read_next(rec).ok()) ++records;
    }
    if (org == Organization::self_scheduled) file->ss_rewind();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(records * 512));
  state.counters["records"] = static_cast<double>(records);
}

}  // namespace

BENCHMARK(BM_HandleReadThroughput)
    ->Arg(static_cast<int>(pio::Organization::sequential))
    ->Arg(static_cast<int>(pio::Organization::partitioned))
    ->Arg(static_cast<int>(pio::Organization::interleaved))
    ->Arg(static_cast<int>(pio::Organization::self_scheduled))
    ->ArgName("org");

// bench_main() with print_figure1() spliced between the banner and the
// runs, so --quick / --json= work here like in every other bench.
int main(int argc, char** argv) {
  constexpr const char* kExperiment =
      "FIG1: parallel file organizations (Figure 1)";
  pio::bench::banner(
      kExperiment,
      "Reprints Figure 1's access patterns from the implemented handles and\n"
      "measures the functional record path per organization (RAM devices).");
  print_figure1();
  pio::bench::strip_sched_flags(argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  pio::bench::JsonCollectingReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  pio::bench::write_json(kExperiment, reporter, pio::bench::json_flag);
  ::benchmark::Shutdown();
  return 0;
}
