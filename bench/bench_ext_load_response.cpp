// EXTENSION: open-load response-time curves.  §6 asks for the degree to
// which I/O parallelism improves performance to be "assessed ... for a
// variety of architectures"; the standard way to present that is response
// time versus offered load.  Transactions arrive in an open Poisson
// stream and read one 48 KB block; we sweep the arrival rate for 1/2/4/8
// devices under the striped (declustered-block) placement.
//
// Expected shape: classic queueing hockey sticks — each curve is flat
// until its knee, and every doubling of devices pushes the knee to
// roughly double the offered load.
#include "bench_util.hpp"
#include "layout/layout.hpp"
#include "sim/resource.hpp"
#include "util/rng.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

constexpr std::uint64_t kBlockBytes = 2 * kTrack;
constexpr std::uint64_t kArrivals = 3000;
constexpr std::uint64_t kFileBlocks = 256;

struct Shared {
  OnlineStats response;
  sim::WaitGroup wg;
  explicit Shared(sim::Engine& eng) : wg(eng) {}
};

sim::Task transaction(sim::Engine& eng, SimDiskArray& disks,
                      const Layout& layout, std::uint64_t block,
                      Shared& shared) {
  const double t0 = eng.now();
  std::vector<DiskSegment> segs;
  for (const Segment& s : layout.map(block * kBlockBytes, kBlockBytes)) {
    segs.push_back(DiskSegment{s.device, s.offset, s.length});
  }
  co_await parallel_io(eng, disks, std::move(segs));
  shared.response.add(eng.now() - t0);
  shared.wg.done();
}

void BM_LoadResponse(benchmark::State& state) {
  const auto devices = static_cast<std::size_t>(state.range(0));
  const double arrival_rate = static_cast<double>(state.range(1));
  double mean_resp = 0;
  double p99ish = 0;
  for (auto _ : state) {
    sim::Engine eng;
    SimDiskArray disks(eng, devices);
    // Whole blocks dealt across devices: each transaction hits one disk,
    // so capacity scales with the device count.
    auto layout = make_interleaved_layout(devices, kBlockBytes);
    Shared shared(eng);
    shared.wg.add(kArrivals);
    Rng rng{0x10AD};
    double t = 0;
    for (std::uint64_t i = 0; i < kArrivals; ++i) {
      t += rng.exponential(1.0 / arrival_rate);
      const std::uint64_t block = rng.uniform_u64(kFileBlocks);
      eng.schedule_callback(t, [&eng, &disks, &layout, block, &shared] {
        eng.spawn(transaction(eng, disks, *layout, block, shared));
      });
    }
    eng.run();
    mean_resp = shared.response.mean();
    p99ish = shared.response.max();
  }
  state.counters["offered_per_s"] = arrival_rate;
  state.counters["mean_resp_ms"] = mean_resp * 1e3;
  state.counters["max_resp_ms"] = p99ish * 1e3;
}

}  // namespace

BENCHMARK(BM_LoadResponse)
    ->ArgsProduct({{1, 2, 4, 8}, {5, 10, 20, 40, 80, 120}})
    ->ArgNames({"devices", "offered"});

PIO_BENCH_MAIN(
    "EXTENSION: response time vs offered load, by device count",
    "Open Poisson stream of single-block (48 KB) transactions against an\n"
    "interleaved-block array.  Each doubling of devices moves the\n"
    "saturation knee to ~2x the offered load.")
