// ABLATION: cluster robustness under an unreliable network.  The
// multi-server tier only earns its keep if a flaky transport or a dead
// server degrades throughput instead of hanging clients or corrupting
// data; this bench prices exactly that.
//
//  faults/healthy — 4 data servers (each 2 devices charging 400 us
//  off-CPU latency per op), 8 client threads routing one-track (24 KiB)
//  ops through the hardened ClusterClient with deadlines, retries, and
//  the per-server breaker armed but NO faults injected: the healthy-path
//  overhead of the robustness machinery (budget: < 5% vs BENCH_cluster's
//  4-server row).
//  faults/flaky — same load through a FaultyTransport with 5% busy
//  submits and 1% dropped completions: every fault is retried inside the
//  router (dropped-completion retries dedup server-side), so all ops
//  still land; p99 shows the retry cost.
//  faults/down — same load with server 1 dark for a 60 ms window
//  mid-run: ops against it fail fast via the breaker and are retried by
//  the app loop; recovery_ms is the gap between the server coming back
//  and the next successful op.
//
// Reported per scenario: aggregate MB/s, p50/p99 per-op latency
// (including app-level retries), app_retries, and recovery_ms (down
// scenario only).  Honors --quick (fewer ops per client) and
// --json=PATH (default BENCH_cluster_faults.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/faulty_transport.hpp"

namespace {

using namespace pio;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kServers = 4;
constexpr std::size_t kClientThreads = 8;
constexpr std::size_t kDevicesPerServer = 2;
constexpr double kDeviceOpUs = 400.0;
constexpr std::uint32_t kRecordBytes = 4096;
constexpr std::uint64_t kRecordsPerOp = 6;  // 24 KiB: one track
constexpr std::uint64_t kSlotsPerClient = 64;
constexpr std::uint64_t kCapacityRecords =
    kClientThreads * kSlotsPerClient * kRecordsPerOp;

enum Scenario : int { kHealthy = 0, kFlaky = 1, kDown = 2 };

std::uint64_t ops_per_client() { return pio::bench::quick_flag ? 32 : 160; }

const char* scenario_name(int s) {
  switch (s) {
    case kFlaky: return "flaky";
    case kDown: return "down";
    default: return "healthy";
  }
}

cluster::ClusterClientOptions client_options() {
  cluster::ClusterClientOptions copts;
  copts.sub_deadline_ms = 300;
  copts.op_deadline_ms = 10'000;
  copts.retry.max_attempts = 4;
  copts.retry.base_backoff_us = 200;
  copts.retry.max_backoff_us = 2'000;
  return copts;
}

void BM_ClusterFaults(benchmark::State& state) {
  const int scenario = static_cast<int>(state.range(0));

  cluster::ClusterOptions options;
  options.data_servers = kServers;
  options.data_server.devices = kDevicesPerServer;
  options.data_server.device_bytes = 32ull << 20;
  options.data_server.device_op_cost_us = kDeviceOpUs;
  auto cl = cluster::Cluster::create(options);
  if (!cl.ok()) {
    state.SkipWithError(cl.error().to_string().c_str());
    return;
  }

  cluster::ClusterCreateOptions create;
  create.name = "bench";
  create.record_bytes = kRecordBytes;
  create.capacity_records = kCapacityRecords;
  create.distribution = {cluster::DistributionKind::strided, 0, kRecordsPerOp};
  if (auto meta = (*cl)->metadata().create(create); !meta.ok()) {
    state.SkipWithError(meta.error().to_string().c_str());
    return;
  }

  cluster::TransportFaultPlan plan;
  if (scenario == kFlaky) {
    plan.channel.busy_probability = 0.05;
    plan.channel.drop_completion_probability = 0.01;
    plan.channel.seed = 1234;
  }
  cluster::FaultyTransport faulty((*cl)->transport(), plan);
  cluster::Transport& transport =
      scenario == kHealthy ? (*cl)->transport()
                           : static_cast<cluster::Transport&>(faulty);

  // Pre-populate (untimed) so reads move real data.
  {
    auto client = (*cl)->connect();
    auto token = client->open("bench");
    std::vector<std::byte> fill(kRecordsPerOp * kRecordBytes, std::byte{0x42});
    for (std::uint64_t slot = 0; slot < kCapacityRecords / kRecordsPerOp;
         ++slot) {
      if (!client->write_records(*token, slot * kRecordsPerOp, kRecordsPerOp,
                                 fill)
               .ok()) {
        state.SkipWithError("pre-populate failed");
        return;
      }
    }
  }

  std::uint64_t bytes = 0;
  std::atomic<int> errors{0};
  std::atomic<std::uint64_t> app_retries{0};
  std::mutex latencies_mutex;
  std::vector<double> latencies_us;
  // Down scenario: when the server comes back, the first successful op
  // completion stamps the recovery gap.
  std::atomic<std::int64_t> up_at_us{-1};
  std::atomic<std::int64_t> recovered_after_us{-1};
  const Clock::time_point bench_epoch = Clock::now();
  auto now_us = [&] {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 bench_epoch)
        .count();
  };

  const auto wall_start = Clock::now();
  for (auto _ : state) {
    std::thread outage;
    if (scenario == kDown) {
      const int start_ms = pio::bench::quick_flag ? 5 : 30;
      const int len_ms = pio::bench::quick_flag ? 20 : 60;
      outage = std::thread([&, start_ms, len_ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(start_ms));
        faulty.set_server_down(1, true);
        std::this_thread::sleep_for(std::chrono::milliseconds(len_ms));
        faulty.set_server_down(1, false);
        up_at_us.store(now_us(), std::memory_order_release);
      });
    }
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < kClientThreads; ++c) {
      threads.emplace_back([&, c] {
        auto client = cluster::ClusterClient::connect(
            (*cl)->metadata(), transport, client_options());
        if (!client.ok()) {
          ++errors;
          return;
        }
        auto token = client->open("bench");
        if (!token.ok()) {
          ++errors;
          return;
        }
        std::vector<std::byte> buf(kRecordsPerOp * kRecordBytes, std::byte{9});
        std::vector<double> local_lat;
        local_lat.reserve(ops_per_client());
        for (std::uint64_t i = 0; i < ops_per_client(); ++i) {
          const std::uint64_t slot = c * kSlotsPerClient + i % kSlotsPerClient;
          const std::uint64_t first = slot * kRecordsPerOp;
          const auto op_start = Clock::now();
          bool landed = false;
          for (int attempt = 0; attempt < 200 && !landed; ++attempt) {
            const Status st =
                i % 2 == 0
                    ? client->write_records(*token, first, kRecordsPerOp, buf)
                    : client->read_records(*token, first, kRecordsPerOp, buf);
            if (st.ok()) {
              landed = true;
            } else if (st.code() == Errc::unavailable ||
                       st.code() == Errc::timed_out) {
              app_retries.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
            } else {
              ++errors;
              return;
            }
          }
          if (!landed) {
            ++errors;
            return;
          }
          const std::int64_t up = up_at_us.load(std::memory_order_acquire);
          if (up >= 0 &&
              recovered_after_us.load(std::memory_order_acquire) < 0) {
            std::int64_t expected = -1;
            recovered_after_us.compare_exchange_strong(expected,
                                                       now_us() - up);
          }
          local_lat.push_back(std::chrono::duration<double, std::micro>(
                                  Clock::now() - op_start)
                                  .count());
        }
        std::scoped_lock lock(latencies_mutex);
        latencies_us.insert(latencies_us.end(), local_lat.begin(),
                            local_lat.end());
      });
    }
    for (std::thread& t : threads) t.join();
    if (outage.joinable()) outage.join();
    bytes += kClientThreads * ops_per_client() * kRecordsPerOp * kRecordBytes;
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  if (errors.load() != 0) state.SkipWithError("client errors");

  std::sort(latencies_us.begin(), latencies_us.end());
  auto quantile = [&](double q) {
    if (latencies_us.empty()) return 0.0;
    const std::size_t at = std::min(
        latencies_us.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies_us.size())));
    return latencies_us[at];
  };

  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.SetLabel(scenario_name(scenario));
  state.counters["servers"] = static_cast<double>(kServers);
  state.counters["clients"] = static_cast<double>(kClientThreads);
  if (wall_s > 0.0) {
    state.counters["MB_per_s"] = static_cast<double>(bytes) / wall_s / 1.0e6;
  }
  state.counters["p50_us"] = quantile(0.50);
  state.counters["p99_us"] = quantile(0.99);
  state.counters["app_retries"] = static_cast<double>(app_retries.load());
  if (scenario == kDown) {
    const std::int64_t rec = recovered_after_us.load();
    state.counters["recovery_ms"] =
        rec >= 0 ? static_cast<double>(rec) / 1'000.0 : -1.0;
  }
  pio::bench::report_registry(state);
}

}  // namespace

// Real time: device latency and fault windows are off-CPU sleeps.
BENCHMARK(BM_ClusterFaults)
    ->Arg(kHealthy)
    ->Arg(kFlaky)
    ->Arg(kDown)
    ->ArgNames({"scenario"})
    ->UseRealTime()
    ->Iterations(1);

PIO_BENCH_MAIN_JSON(
    "ABLATION: cluster robustness under an unreliable network",
    "8 client threads drive one-track (24 KiB) ops through the hardened\n"
    "ClusterClient over 4 data servers (2 devices each, 400 us/op).\n"
    "healthy = retry/deadline/breaker machinery armed, no faults (its\n"
    "overhead must stay < 5% of BENCH_cluster's 4-server row); flaky = 5%\n"
    "busy submits + 1% dropped completions absorbed by bounded retries\n"
    "and the server dedup window; down = server 1 dark for 60 ms mid-run,\n"
    "failed fast by the breaker, recovery_ms = gap from restore to the\n"
    "next successful op.",
    "BENCH_cluster_faults.json")
