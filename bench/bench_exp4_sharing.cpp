// EXP4 (§4 ¶4): "For systems with many processors, it may not be practical
// to allocate a separate storage device for each processor.  In this case,
// blocks belonging to several processes would be allocated to each device.
// Seek times are likely to cause some performance degradation ...  Work is
// needed here to determine the best ways to allocate space on the disks."
//
// 16 processes scanning their partitions, sweeping the device count from
// 16 (dedicated) down to 1, under three allocations:
//   blocked+grouped      — neighbouring partitions share a device
//   blocked+round_robin  — distant partitions share a device
//   interleaved          — the sharing processes' blocks are fine-grained
//                          interleaved in device space (short seeks)
//
// Expected shape: per-process bandwidth degrades as processes-per-device
// grows; the interleaved allocation degrades the least because the
// concurrent regions stay close together on the platter.
#include "bench_util.hpp"
#include "layout/layout.hpp"
#include "workload/sim_process.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

constexpr std::size_t kProcesses = 16;
constexpr std::uint64_t kBlockBytes = 2 * kTrack;
constexpr double kCompute = 0.002;

/// Read at run time (not registration) so --quick can trim the scan; the
/// seek-interference shape survives the smaller per-process extent.
std::uint64_t blocks_per_process() {
  return pio::bench::quick_flag ? 6 : 24;
}

enum class Alloc { blocked_grouped, blocked_round_robin, interleaved };

std::unique_ptr<Layout> make_alloc(Alloc alloc, std::size_t devices) {
  switch (alloc) {
    case Alloc::blocked_grouped:
      return std::make_unique<BlockedLayout>(kProcesses,
                                             blocks_per_process() * kBlockBytes,
                                             devices, PartitionPlacement::grouped);
    case Alloc::blocked_round_robin:
      return std::make_unique<BlockedLayout>(
          kProcesses, blocks_per_process() * kBlockBytes, devices,
          PartitionPlacement::round_robin);
    case Alloc::interleaved:
      return make_interleaved_layout(devices, kBlockBytes);
  }
  return nullptr;
}

void run_case(benchmark::State& state, Alloc alloc) {
  const auto devices = static_cast<std::size_t>(state.range(0));
  const std::uint64_t bytes = kProcesses * blocks_per_process() * kBlockBytes;
  double elapsed = 0;
  double mean_seek = 0;
  for (auto _ : state) {
    sim::Engine eng;
    SimDiskArray disks(eng, devices);
    auto layout = make_alloc(alloc, devices);
    std::vector<std::vector<SimOp>> ops;
    for (std::size_t p = 0; p < kProcesses; ++p) {
      std::vector<SimOp> mine;
      for (std::uint64_t b = 0; b < blocks_per_process(); ++b) {
        // Process p's logical blocks: contiguous for PS, strided for IS.
        const std::uint64_t block = alloc == Alloc::interleaved
                                        ? p + b * kProcesses
                                        : p * blocks_per_process() + b;
        mine.push_back(SimOp{block * kBlockBytes, kBlockBytes, kCompute});
      }
      ops.push_back(std::move(mine));
    }
    elapsed = run_processes(eng, disks, *layout, std::move(ops));
    OnlineStats seeks;
    for (std::size_t d = 0; d < devices; ++d) {
      seeks.merge(disks[d].seek_stats());
    }
    mean_seek = seeks.mean();
  }
  pio::bench::report_sim(state, elapsed, bytes);
  state.counters["procs_per_device"] =
      static_cast<double>(kProcesses) / static_cast<double>(devices);
  state.counters["per_process_MB_s"] =
      static_cast<double>(bytes) / kProcesses / elapsed / 1e6;
  state.counters["mean_seek_ms"] = mean_seek * 1e3;
}

void BM_Sharing_BlockedGrouped(benchmark::State& state) {
  run_case(state, Alloc::blocked_grouped);
}
void BM_Sharing_BlockedRoundRobin(benchmark::State& state) {
  run_case(state, Alloc::blocked_round_robin);
}
void BM_Sharing_Interleaved(benchmark::State& state) {
  run_case(state, Alloc::interleaved);
}

}  // namespace

BENCHMARK(BM_Sharing_BlockedGrouped)
    ->Arg(16)->Arg(8)->Arg(4)->Arg(2)->Arg(1)
    ->ArgNames({"devices"});
BENCHMARK(BM_Sharing_BlockedRoundRobin)
    ->Arg(16)->Arg(8)->Arg(4)->Arg(2)->Arg(1)
    ->ArgNames({"devices"});
BENCHMARK(BM_Sharing_Interleaved)
    ->Arg(16)->Arg(8)->Arg(4)->Arg(2)->Arg(1)
    ->ArgNames({"devices"});

PIO_BENCH_MAIN(
    "EXP4: devices shared by several processes (paper §4)",
    "16 PS/IS processes over 16..1 devices.  Reports per-process bandwidth\n"
    "and mean seek time per allocation strategy — the paper's open\n"
    "question on allocating space to minimize seek interference.")
