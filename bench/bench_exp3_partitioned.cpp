// EXP3 (§4 ¶3): "Types PS and IS have obvious implementations if there is
// one device per process ... processes are free to proceed at different
// rates, so that the corresponding blocks on different disks would not
// usually be accessed at the same time."
//
// P processes, P devices, PS (blocked) and IS (block-interleaved) layouts.
// Processes compute at deliberately skewed rates.  Expected shape:
// aggregate bandwidth scales ~linearly with P=D for both layouts, and the
// skewed process rates do not interfere (each process owns its device).
#include "bench_util.hpp"
#include "layout/layout.hpp"
#include "workload/sim_process.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

constexpr std::uint64_t kBlocksPerProcess = 48;
constexpr std::uint64_t kBlockBytes = 2 * kTrack;

std::vector<std::vector<SimOp>> make_ops(std::size_t processes,
                                         bool interleaved, double base_compute,
                                         double skew_factor) {
  std::vector<std::vector<SimOp>> all;
  const std::uint64_t total_blocks = kBlocksPerProcess * processes;
  for (std::size_t p = 0; p < processes; ++p) {
    // Process p computes at its own rate: rates spread linearly up to
    // skew_factor x the fastest.
    const double compute =
        base_compute *
        (1.0 + skew_factor * static_cast<double>(p) /
                   static_cast<double>(processes > 1 ? processes - 1 : 1));
    std::vector<SimOp> ops;
    for (std::uint64_t b = 0; b < kBlocksPerProcess; ++b) {
      const std::uint64_t block =
          interleaved ? p + b * processes : p * kBlocksPerProcess + b;
      if (block >= total_blocks) break;
      ops.push_back(SimOp{block * kBlockBytes, kBlockBytes, compute});
    }
    all.push_back(std::move(ops));
  }
  return all;
}

void run_case(benchmark::State& state, bool interleaved, double skew) {
  const auto processes = static_cast<std::size_t>(state.range(0));
  const std::uint64_t bytes = kBlocksPerProcess * kBlockBytes * processes;
  double elapsed = 0;
  for (auto _ : state) {
    sim::Engine eng;
    SimDiskArray disks(eng, processes);  // one device per process
    std::unique_ptr<Layout> layout;
    if (interleaved) {
      layout = make_interleaved_layout(processes, kBlockBytes);
    } else {
      layout = std::make_unique<BlockedLayout>(
          processes, kBlocksPerProcess * kBlockBytes, processes);
    }
    elapsed = run_processes(eng, disks, *layout,
                            make_ops(processes, interleaved, 0.004, skew));
  }
  pio::bench::report_sim(state, elapsed, bytes);
  state.counters["aggregate_MB_per_s"] =
      static_cast<double>(bytes) / elapsed / 1e6;
}

void BM_PS_DevicePerProcess(benchmark::State& state) {
  run_case(state, /*interleaved=*/false, /*skew=*/1.0);
}
void BM_IS_DevicePerProcess(benchmark::State& state) {
  run_case(state, /*interleaved=*/true, /*skew=*/1.0);
}
void BM_PS_UniformRates(benchmark::State& state) {
  run_case(state, /*interleaved=*/false, /*skew=*/0.0);
}

}  // namespace

BENCHMARK(BM_PS_DevicePerProcess)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->ArgNames({"processes"});
BENCHMARK(BM_IS_DevicePerProcess)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->ArgNames({"processes"});
BENCHMARK(BM_PS_UniformRates)
    ->Arg(1)->Arg(4)->Arg(16)
    ->ArgNames({"processes"});

PIO_BENCH_MAIN(
    "EXP3: PS/IS with one device per process (paper §4)",
    "Aggregate bandwidth vs P=D for blocked (PS) and block-interleaved (IS)\n"
    "placements, with per-process compute rates skewed up to 2x.  Shape:\n"
    "near-linear scaling; skew costs only the straggler's tail.")
