// ABLATION: IoScheduler queue policy + request coalescing.  §3's record
// orientation makes small strided requests the common case, and §4 names
// seek interference as the cost of sharing a device.  This bench measures
// the two remedies the scheduler now implements, on both paths:
//
//  Part A (functional): interleaved 64 B record streams against devices
//  charging a fixed positioning cost per OPERATION.  FIFO with merging
//  off (the historical dispatcher — must stay one device op per record)
//  vs SCAN with coalescing, which folds abutting records into vectored
//  ops and pays the positioning cost once per run.
//
//  Part B (virtual time): wave-synchronous fine-interleaved 4 KB records
//  on the calibrated 1989 disks.  The unmerged variant issues one
//  disk.io() per record segment; the merged variant coalesces each
//  wave's abutting per-device segments into disk.iov() calls — one seek
//  + rotation per stripe unit instead of six.
//
// BM_Func_Configured honors --sched=fifo|scan|sstf / --max-merge=BYTES.
#include <array>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/io_scheduler.hpp"
#include "core/parallel_file.hpp"
#include "device/ram_disk.hpp"
#include "device/throttle_device.hpp"
#include "layout/layout.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

// ------------------------------------------------- Part A: functional path

constexpr std::size_t kFuncDevices = 4;
constexpr std::uint64_t kFuncRecords = 2048;
constexpr std::uint64_t kFuncStreams = 8;
constexpr std::uint32_t kFuncRecordBytes = 64;
constexpr std::uint64_t kFuncStripeUnit = 256;
constexpr double kOpCostUs = 5.0;

void run_functional(benchmark::State& state, IoSchedulerOptions options) {
  std::uint64_t device_ops = 0;
  std::uint64_t coalesced = 0;
  obs::Counter& coalesced_ctr =
      obs::MetricsRegistry::global().counter("iosched.coalesced");
  for (auto _ : state) {
    DeviceArray devices;
    for (std::size_t d = 0; d < kFuncDevices; ++d) {
      devices.add(std::make_unique<ThrottledDevice>(
          std::make_unique<RamDisk>("ram" + std::to_string(d), 8ull << 20),
          kOpCostUs));
    }
    FileMeta meta;
    meta.name = "bench";
    meta.organization = Organization::sequential;
    meta.layout_kind = LayoutKind::striped;
    meta.record_bytes = kFuncRecordBytes;
    meta.stripe_unit = kFuncStripeUnit;
    meta.capacity_records = kFuncRecords;
    ParallelFile file(meta, devices,
                      std::vector<std::uint64_t>(kFuncDevices, 0));
    std::vector<std::byte> out(kFuncRecords * kFuncRecordBytes);
    const std::uint64_t coalesced0 = coalesced_ctr.value();
    {
      IoScheduler io(devices, options);
      IoBatch batch;
      constexpr std::uint64_t per_stream = kFuncRecords / kFuncStreams;
      for (std::uint64_t wave = 0; wave < per_stream; ++wave) {
        for (std::uint64_t s = 0; s < kFuncStreams; ++s) {
          const std::uint64_t r = s * per_stream + wave;
          io.read_records(
              file, r, 1,
              std::span(out.data() + r * kFuncRecordBytes, kFuncRecordBytes),
              batch);
        }
      }
      benchmark::DoNotOptimize(batch.wait());
    }
    device_ops = 0;
    for (std::size_t d = 0; d < kFuncDevices; ++d) {
      device_ops += devices[d].counters().reads.load();
    }
    coalesced = coalesced_ctr.value() - coalesced0;
  }
  state.counters["device_ops"] = static_cast<double>(device_ops);
  state.counters["ops_per_record"] =
      static_cast<double>(device_ops) / static_cast<double>(kFuncRecords);
  state.counters["coalesced"] = static_cast<double>(coalesced);
  state.counters["coalesce_rate"] =
      static_cast<double>(coalesced) / static_cast<double>(kFuncRecords);
}

// The historical dispatcher: one device op per record, nothing merged.
void BM_Func_FifoNoMerge(benchmark::State& state) {
  run_functional(state, IoSchedulerOptions{});
}

void BM_Func_ScanMerge(benchmark::State& state) {
  run_functional(state, IoSchedulerOptions{QueuePolicy::scan, kFuncStripeUnit});
}

// Reads the harness --sched / --max-merge flags.
void BM_Func_Configured(benchmark::State& state) {
  IoSchedulerOptions options;
  options.policy =
      parse_queue_policy(pio::bench::sched_flag).value_or(QueuePolicy::scan);
  options.max_merge_bytes = pio::bench::max_merge_flag;
  state.SetLabel(std::string(queue_policy_name(options.policy)) + "+merge=" +
                 std::to_string(options.max_merge_bytes));
  run_functional(state, options);
}

// ------------------------------------------ Part A2: gapped (strided) path

// Every stream reads every OTHER record of its region — 64 B extents with
// 64 B holes, the pattern strided record access produces on each device.
// Abutting-only coalescing finds nothing to fold (no two extents touch);
// merge_gaps packs the fragments into gapped vectored ops within the span
// budget and pays the positioning charge once per group.
void run_functional_gapped(benchmark::State& state, bool merge_gaps) {
  std::uint64_t device_ops = 0;
  std::uint64_t issued = 0;
  for (auto _ : state) {
    DeviceArray devices;
    for (std::size_t d = 0; d < kFuncDevices; ++d) {
      devices.add(std::make_unique<ThrottledDevice>(
          std::make_unique<RamDisk>("ram" + std::to_string(d), 8ull << 20),
          kOpCostUs));
    }
    FileMeta meta;
    meta.name = "bench";
    meta.organization = Organization::sequential;
    meta.layout_kind = LayoutKind::striped;
    meta.record_bytes = kFuncRecordBytes;
    meta.stripe_unit = kFuncStripeUnit;
    meta.capacity_records = kFuncRecords;
    ParallelFile file(meta, devices,
                      std::vector<std::uint64_t>(kFuncDevices, 0));
    std::vector<std::byte> out(kFuncRecords * kFuncRecordBytes);
    IoSchedulerOptions options;
    options.policy = QueuePolicy::scan;
    options.max_merge_bytes = 4096;
    options.merge_gaps = merge_gaps;
    issued = 0;
    {
      IoScheduler io(devices, options);
      IoBatch batch;
      constexpr std::uint64_t per_stream = kFuncRecords / kFuncStreams;
      for (std::uint64_t wave = 0; wave < per_stream / 2; ++wave) {
        for (std::uint64_t s = 0; s < kFuncStreams; ++s) {
          const std::uint64_t r = s * per_stream + 2 * wave;  // every other
          io.read_records(
              file, r, 1,
              std::span(out.data() + r * kFuncRecordBytes, kFuncRecordBytes),
              batch);
          ++issued;
        }
      }
      benchmark::DoNotOptimize(batch.wait());
    }
    device_ops = 0;
    for (std::size_t d = 0; d < kFuncDevices; ++d) {
      device_ops += devices[d].counters().reads.load();
    }
  }
  state.counters["device_ops"] = static_cast<double>(device_ops);
  state.counters["ops_per_record"] =
      static_cast<double>(device_ops) / static_cast<double>(issued);
}

void BM_Func_StridedNoGapMerge(benchmark::State& state) {
  run_functional_gapped(state, /*merge_gaps=*/false);
}

void BM_Func_StridedGapMerge(benchmark::State& state) {
  run_functional_gapped(state, /*merge_gaps=*/true);
}

// ----------------------------------------------- Part B: virtual-time path

constexpr std::size_t kSimDevices = 4;
constexpr std::size_t kSimProcesses = 24;
constexpr std::uint64_t kSimRecordBytes = 4 * 1024;  // sub-stripe-unit
constexpr std::uint64_t kSimWaves = 96;
constexpr std::uint64_t kWaveBytes = kSimProcesses * kSimRecordBytes;

sim::Task iov_io(SimDisk& disk, std::vector<SimIoVec> frags,
                 sim::WaitGroup& wg) {
  co_await disk.iov(std::move(frags));
  wg.done();
}

// Every wave, each of P processes reads its next fine-interleaved 4 KB
// record; the wave barrier models the loosely synchronous compute loop.
sim::Task sim_driver(sim::Engine& eng, SimDiskArray& disks,
                     const StripedLayout& layout, std::uint64_t merge_cap,
                     sim::WaitGroup& done) {
  for (std::uint64_t w = 0; w < kSimWaves; ++w) {
    if (merge_cap == 0) {
      // One device request per process record — the layout never sees
      // more than a record at a time, so nothing coalesces.
      std::vector<DiskSegment> ops;
      for (std::size_t p = 0; p < kSimProcesses; ++p) {
        const std::uint64_t off = (w * kSimProcesses + p) * kSimRecordBytes;
        for (const Segment& s : layout.map(off, kSimRecordBytes)) {
          ops.push_back(DiskSegment{s.device, s.offset, s.length});
        }
      }
      co_await parallel_io(eng, disks, std::move(ops));
    } else {
      // Same per-record segment stream; the coalescer merges abutting
      // on-device neighbors into vectored requests of <= merge_cap bytes.
      std::vector<Segment> segs;
      for (std::size_t p = 0; p < kSimProcesses; ++p) {
        const std::uint64_t off = (w * kSimProcesses + p) * kSimRecordBytes;
        for (const Segment& s : layout.map(off, kSimRecordBytes)) {
          segs.push_back(s);
        }
      }
      std::array<std::vector<std::vector<SimIoVec>>, kSimDevices> groups;
      std::array<std::uint64_t, kSimDevices> group_bytes{};
      for (const Segment& s : segs) {
        auto& dev_groups = groups[s.device];
        if (dev_groups.empty() ||
            group_bytes[s.device] + s.length > merge_cap ||
            dev_groups.back().back().offset +
                    dev_groups.back().back().length != s.offset) {
          dev_groups.emplace_back();
          group_bytes[s.device] = 0;
        }
        dev_groups.back().push_back(SimIoVec{s.offset, s.length});
        group_bytes[s.device] += s.length;
      }
      sim::WaitGroup wg(eng);
      std::size_t n = 0;
      for (const auto& dev_groups : groups) n += dev_groups.size();
      wg.add(n);
      for (std::size_t d = 0; d < kSimDevices; ++d) {
        for (auto& frags : groups[d]) {
          eng.spawn(iov_io(disks[d], std::move(frags), wg));
        }
      }
      co_await wg.wait();
    }
  }
  done.done();
}

void run_sim(benchmark::State& state, QueueDiscipline discipline,
             std::uint64_t merge_cap) {
  double elapsed = 0;
  std::uint64_t requests = 0;
  for (auto _ : state) {
    sim::Engine eng;
    SimDiskArray disks(eng, kSimDevices, {}, {}, discipline);
    StripedLayout layout(kSimDevices, kTrack);
    sim::WaitGroup done(eng);
    done.add(1);
    eng.spawn(sim_driver(eng, disks, layout, merge_cap, done));
    elapsed = eng.run();
    requests = 0;
    for (std::size_t d = 0; d < kSimDevices; ++d) {
      requests += disks[d].requests();
    }
  }
  pio::bench::report_sim(state, elapsed, kSimWaves * kWaveBytes);
  state.counters["device_requests"] = static_cast<double>(requests);
}

void BM_Sim_FifoUnmerged(benchmark::State& state) {
  run_sim(state, QueueDiscipline::fifo, 0);
}

void BM_Sim_ScanMerged(benchmark::State& state) {
  run_sim(state, QueueDiscipline::scan, kTrack);
}

}  // namespace

BENCHMARK(BM_Func_FifoNoMerge);
BENCHMARK(BM_Func_ScanMerge);
BENCHMARK(BM_Func_Configured);
BENCHMARK(BM_Func_StridedNoGapMerge);
BENCHMARK(BM_Func_StridedGapMerge);
BENCHMARK(BM_Sim_FifoUnmerged);
BENCHMARK(BM_Sim_ScanMerged);

PIO_BENCH_MAIN(
    "ABLATION: IoScheduler policies + request coalescing",
    "Sub-stripe-unit strided reads, functional and virtual-time paths.\n"
    "SCAN + coalescing issues one vectored device op per contiguous run\n"
    "(one positioning charge) where FIFO without merging pays per record.")
