// EXP6 (§4 ¶6): "Initial experiments using the S and SS organizations have
// shown that buffering overheads can be a significant factor in limiting
// speedups.  The sequential organizations can mitigate this effect through
// the use of multiple buffering and dedicated I/O processors.  Since the
// order of accesses is predictable, reading ahead and deferred writing can
// be used to overlap I/O operations with computation."
//
// Three sweeps on a striped type-S stream:
//   (1) buffer depth {sync, 1, 2, 4} x compute:io ratio  — overlap gains
//   (2) per-chunk buffering (merge/split CPU) overhead    — the "limiting
//       factor" claim: rising overhead erodes the striping speedup
//   (3) deferred writing mirror of (1)
#include "bench_util.hpp"
#include "buffer/sim_stream.hpp"
#include "layout/layout.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

constexpr std::size_t kDevices = 4;
constexpr std::uint64_t kChunks = 64;
constexpr std::uint64_t kChunkBytes = kDevices * kTrack;  // full stripe

SimChunkIo striped_fetch(sim::Engine& eng, SimDiskArray& disks,
                         const StripedLayout& layout) {
  return [&eng, &disks, &layout](std::uint64_t i) -> sim::Task {
    std::vector<DiskSegment> segs;
    for (const Segment& s : layout.map(i * kChunkBytes, kChunkBytes)) {
      segs.push_back(DiskSegment{s.device, s.offset, s.length});
    }
    return parallel_io(eng, disks, std::move(segs));
  };
}

// io time per chunk ~ half-rev + track transfer ~ 25 ms; sweep compute
// against it.
double compute_for_ratio(double ratio) { return 0.025 * ratio; }

void BM_ReadBuffering(benchmark::State& state) {
  const auto buffers = static_cast<std::size_t>(state.range(0));
  const double ratio = static_cast<double>(state.range(1)) / 100.0;
  double elapsed = 0;
  for (auto _ : state) {
    sim::Engine eng;
    SimDiskArray disks(eng, kDevices);
    StripedLayout layout(kDevices, kTrack);
    BufferedStreamConfig cfg;
    cfg.chunks = kChunks;
    cfg.buffers = buffers == 0 ? 1 : buffers;
    cfg.compute_per_chunk_s = compute_for_ratio(ratio);
    cfg.overlap = buffers != 0;  // 0 encodes the synchronous baseline
    eng.spawn(buffered_read_stream(eng, striped_fetch(eng, disks, layout),
                                   cfg, &elapsed));
    eng.run();
  }
  pio::bench::report_sim(state, elapsed, kChunks * kChunkBytes);
  state.counters["compute_io_ratio"] = ratio;
}

void BM_WriteBuffering(benchmark::State& state) {
  const auto buffers = static_cast<std::size_t>(state.range(0));
  const double ratio = static_cast<double>(state.range(1)) / 100.0;
  double elapsed = 0;
  for (auto _ : state) {
    sim::Engine eng;
    SimDiskArray disks(eng, kDevices);
    StripedLayout layout(kDevices, kTrack);
    BufferedStreamConfig cfg;
    cfg.chunks = kChunks;
    cfg.buffers = buffers == 0 ? 1 : buffers;
    cfg.compute_per_chunk_s = compute_for_ratio(ratio);
    cfg.overlap = buffers != 0;
    eng.spawn(buffered_write_stream(eng, striped_fetch(eng, disks, layout),
                                    cfg, &elapsed));
    eng.run();
  }
  pio::bench::report_sim(state, elapsed, kChunks * kChunkBytes);
  state.counters["compute_io_ratio"] = ratio;
}

// The "buffering overheads limit speedups" sweep: fix double buffering,
// charge a rising per-chunk merge/split CPU cost, and report the effective
// speedup of 4-disk striping over the ideal single-disk stream.
void BM_BufferOverheadLimitsSpeedup(benchmark::State& state) {
  const double overhead_ms = static_cast<double>(state.range(0));
  double striped_elapsed = 0;
  double solo_elapsed = 0;
  for (auto _ : state) {
    {
      sim::Engine eng;
      SimDiskArray disks(eng, kDevices);
      StripedLayout layout(kDevices, kTrack);
      BufferedStreamConfig cfg;
      cfg.chunks = kChunks;
      cfg.buffers = 2;
      cfg.buffer_overhead_s = overhead_ms * 1e-3;
      eng.spawn(buffered_read_stream(eng, striped_fetch(eng, disks, layout),
                                     cfg, &striped_elapsed));
      eng.run();
    }
    {
      sim::Engine eng;
      SimDiskArray disks(eng, 1);
      StripedLayout layout(1, kTrack);
      BufferedStreamConfig cfg;
      cfg.chunks = kChunks;
      cfg.buffers = 2;
      cfg.buffer_overhead_s = 0;  // ideal unbuffered-overhead baseline
      eng.spawn(buffered_read_stream(eng, striped_fetch(eng, disks, layout),
                                     cfg, &solo_elapsed));
      eng.run();
    }
  }
  pio::bench::report_sim(state, striped_elapsed, kChunks * kChunkBytes);
  state.counters["overhead_ms_per_chunk"] = overhead_ms;
  state.counters["speedup_vs_1disk"] = solo_elapsed / striped_elapsed;
}

}  // namespace

// Arg 0 encodes the synchronous (no-overlap) baseline.
BENCHMARK(BM_ReadBuffering)
    ->ArgsProduct({{0, 1, 2, 4}, {25, 50, 100, 200}})
    ->ArgNames({"buffers", "ratio_x100"});
BENCHMARK(BM_WriteBuffering)
    ->ArgsProduct({{0, 2, 4}, {50, 100}})
    ->ArgNames({"buffers", "ratio_x100"});
BENCHMARK(BM_BufferOverheadLimitsSpeedup)
    ->Arg(0)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(100)
    ->ArgNames({"overhead_ms"});

PIO_BENCH_MAIN(
    "EXP6: buffering, read-ahead, deferred writing (paper §4)",
    "Striped type-S stream: (1) elapsed vs buffer depth and compute:I/O\n"
    "ratio, (2) deferred-write mirror, (3) per-chunk buffering overhead\n"
    "eroding the 4-disk striping speedup — the paper's 'significant\n"
    "factor in limiting speedups'.")
