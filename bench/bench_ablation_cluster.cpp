// ABLATION: multi-server scale-out.  The paper's file concepts assume the
// file system can spread one file over however many I/O nodes the machine
// has; this bench measures whether the cluster layer actually converts
// added data servers into added throughput for a FIXED client load.
//
//  cluster/S — S data servers (each 2 devices charging 400 us off-CPU
//  latency per op, its own IoScheduler + IoServer), one MetadataService,
//  and 8 client threads routing through ClusterClient.  Every op moves
//  one track (24 KiB) that the block-cyclic distribution places wholly on
//  one server; consecutive slots rotate servers, so the 8 threads' ops
//  spread across the fleet.  The client load never changes — only the
//  server count does.
//
// Expected: 1 server bottlenecks on its 2 devices (~2 ops in service at
// once for 8 waiting clients); 4 servers lift the ceiling to 8 devices
// and aggregate throughput by >= 2.5x; 8 servers plateau near the client
// concurrency limit (8 synchronous threads cannot keep 16 devices busy).
//
// Honors --quick (fewer ops per client), --data-servers=N (pin the server
// count instead of sweeping 1/2/4/8), --distribution=block|cyclic|strided
// (file layout across servers), and --json=PATH (default
// BENCH_cluster.json).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

constexpr std::size_t kClientThreads = 8;
constexpr std::size_t kDevicesPerServer = 2;
constexpr double kDeviceOpUs = 400.0;  // positioning + one-track transfer
constexpr std::uint32_t kRecordBytes = 4096;
constexpr std::uint64_t kRecordsPerOp = 6;  // 24 KiB: exactly one track
constexpr std::uint64_t kSlotsPerClient = 64;
constexpr std::uint64_t kCapacityRecords =
    kClientThreads * kSlotsPerClient * kRecordsPerOp;

std::uint64_t ops_per_client() { return pio::bench::quick_flag ? 48 : 160; }

cluster::DistributionSpec bench_spec() {
  cluster::DistributionSpec spec;
  spec.kind = cluster::parse_distribution_kind(pio::bench::distribution_flag)
                  .value_or(cluster::DistributionKind::strided);
  // One op per chunk: an aligned track-sized transfer lands wholly on one
  // server, and consecutive slots rotate servers.
  spec.chunk_records = kRecordsPerOp;
  return spec;
}

/// Server-scaling summary, printed at process exit: aggregate MB/s per
/// server count and the ratio against the 1-server run — the scale-out
/// claim in one table.
struct ScalingRow {
  std::size_t servers;
  double mb_per_s;
};
std::vector<ScalingRow>& scaling_rows() {
  static std::vector<ScalingRow> rows;
  return rows;
}
void print_scaling_summary() {
  const auto& rows = scaling_rows();
  if (rows.empty()) return;
  double base = 0.0;
  for (const ScalingRow& r : rows) {
    if (r.servers == 1 && base == 0.0) base = r.mb_per_s;
  }
  std::printf("\n--- data-server scaling (fixed %zu-thread client load) ---\n",
              kClientThreads);
  std::printf("%8s %12s %12s\n", "servers", "MB/s", "vs 1-srv");
  for (const ScalingRow& r : rows) {
    std::printf("%8zu %12.1f %11.2fx\n", r.servers, r.mb_per_s,
                base > 0.0 ? r.mb_per_s / base : 0.0);
  }
  std::printf("\n");
}
void record_scaling_run(std::size_t servers, double mb_per_s) {
  if (scaling_rows().empty()) std::atexit(print_scaling_summary);
  scaling_rows().push_back(ScalingRow{servers, mb_per_s});
}

void BM_ClusterScaling(benchmark::State& state) {
  const std::size_t servers =
      pio::bench::data_servers_flag > 0
          ? pio::bench::data_servers_flag
          : static_cast<std::size_t>(state.range(0));

  cluster::ClusterOptions options;
  options.data_servers = servers;
  options.data_server.devices = kDevicesPerServer;
  options.data_server.device_bytes = 32ull << 20;
  options.data_server.device_op_cost_us = kDeviceOpUs;
  auto cl = cluster::Cluster::create(options);
  if (!cl.ok()) {
    state.SkipWithError(cl.error().to_string().c_str());
    return;
  }

  cluster::ClusterCreateOptions create;
  create.name = "bench";
  create.record_bytes = kRecordBytes;
  create.capacity_records = kCapacityRecords;
  create.distribution = bench_spec();
  if (auto meta = (*cl)->metadata().create(create); !meta.ok()) {
    state.SkipWithError(meta.error().to_string().c_str());
    return;
  }

  // Pre-populate (untimed) so reads move real data.
  {
    auto client = (*cl)->connect();
    auto token = client->open("bench");
    std::vector<std::byte> fill(kRecordsPerOp * kRecordBytes, std::byte{0x42});
    for (std::uint64_t slot = 0; slot < kCapacityRecords / kRecordsPerOp;
         ++slot) {
      if (!client->write_records(*token, slot * kRecordsPerOp, kRecordsPerOp,
                                 fill)
               .ok()) {
        state.SkipWithError("pre-populate failed");
        return;
      }
    }
  }

  std::uint64_t bytes = 0;
  std::atomic<int> errors{0};
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < kClientThreads; ++c) {
      threads.emplace_back([&, c] {
        auto client = (*cl)->connect();
        if (!client.ok()) {
          ++errors;
          return;
        }
        auto token = client->open("bench");
        if (!token.ok()) {
          ++errors;
          return;
        }
        std::vector<std::byte> buf(kRecordsPerOp * kRecordBytes, std::byte{9});
        for (std::uint64_t i = 0; i < ops_per_client(); ++i) {
          const std::uint64_t slot =
              c * kSlotsPerClient + i % kSlotsPerClient;
          const std::uint64_t first = slot * kRecordsPerOp;
          const Status st =
              i % 2 == 0
                  ? client->write_records(*token, first, kRecordsPerOp, buf)
                  : client->read_records(*token, first, kRecordsPerOp, buf);
          if (!st.ok()) {
            ++errors;
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    bytes += kClientThreads * ops_per_client() * kRecordsPerOp * kRecordBytes;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (errors.load() != 0) state.SkipWithError("client errors");
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.counters["servers"] = static_cast<double>(servers);
  state.counters["clients"] = static_cast<double>(kClientThreads);
  if (wall_s > 0.0) {
    const double mb_per_s = static_cast<double>(bytes) / wall_s / 1.0e6;
    state.counters["MB_per_s"] = mb_per_s;
    record_scaling_run(servers, mb_per_s);
  }
  pio::bench::report_registry(state);
}

}  // namespace

// Real time: device latency is off-CPU sleep; CPU time would hide it.
BENCHMARK(BM_ClusterScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"servers"})
    ->UseRealTime()
    ->Iterations(1);

PIO_BENCH_MAIN_JSON(
    "ABLATION: multi-server scale-out (fixed client load)",
    "8 client threads route one-track (24 KiB) record ops through the\n"
    "ClusterClient over 1/2/4/8 data servers, each with 2 devices charging\n"
    "400 us off-CPU latency per op.  The block-cyclic distribution rotates\n"
    "ops across servers.  Expected: 4 servers >= 2.5x the 1-server\n"
    "aggregate; 8 servers plateau at the client concurrency limit.",
    "BENCH_cluster.json")
