// ABLATION: data sieving + bounded two-phase collective I/O for strided
// access.  §3's record orientation makes sub-stripe-unit strided requests
// the expensive common case: the direct path pays one positioning charge
// per group.  Sieving trades read amplification for positioning (few big
// covering-extent chunks, scatter in memory); the two-phase collective
// adds aggregator concurrency and an in-memory exchange.
//
//  Part A (functional): fine-interleaved 64 B records on devices charging
//  a fixed positioning cost per OPERATION.  direct (one op per group) vs
//  sieved (chunked covering reads) vs collective (aggregator domains
//  through the IoScheduler, whose SCAN+coalescing folds each chunk's
//  track-sized segments further into vectored ops — the sieve feeds the
//  PR-2 coalescer).  device_ops and access.staging_peak_bytes ride along.
//
//  Part B (virtual time): the same three strategies on the calibrated
//  1989 disks across record sizes and fill ratios; the exchange phase is
//  charged at a 20 MB/s era copy rate.  sieved/collective report
//  speedup_vs_direct; the claim is >= 2x for sub-stripe-unit records.
//
// Honors --sieve-buf=BYTES, --aggregators=N, --sched=, --max-merge=,
// --quick, and --json=PATH (default BENCH_sieving.json).
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/access_methods.hpp"
#include "core/io_scheduler.hpp"
#include "core/parallel_file.hpp"
#include "device/ram_disk.hpp"
#include "device/throttle_device.hpp"
#include "layout/layout.hpp"
#include "workload/sim_process.hpp"

namespace {

using namespace pio;
using pio::bench::kTrack;

// ------------------------------------------------- Part A: functional path

constexpr std::size_t kFuncDevices = 4;
constexpr std::uint32_t kFuncRecordBytes = 64;
constexpr double kOpCostUs = 5.0;

std::uint64_t func_extent_records() {
  return pio::bench::quick_flag ? 8192 : 32768;
}

struct FuncRig {
  DeviceArray devices;
  std::unique_ptr<ParallelFile> file;

  FuncRig() {
    for (std::size_t d = 0; d < kFuncDevices; ++d) {
      devices.add(std::make_unique<ThrottledDevice>(
          std::make_unique<RamDisk>("ram" + std::to_string(d), 16ull << 20),
          kOpCostUs));
    }
    FileMeta meta;
    meta.name = "bench";
    meta.organization = Organization::sequential;
    meta.layout_kind = LayoutKind::striped;
    meta.record_bytes = kFuncRecordBytes;
    meta.stripe_unit = kTrack;  // realistic unit: big reads stay few-segment
    meta.capacity_records = func_extent_records();
    file = std::make_unique<ParallelFile>(
        meta, devices, std::vector<std::uint64_t>(kFuncDevices, 0));
  }

  std::uint64_t device_ops() const {
    std::uint64_t ops = 0;
    for (std::size_t d = 0; d < kFuncDevices; ++d) {
      ops += devices[d].counters().reads.load();
    }
    return ops;
  }
};

void report_func(benchmark::State& state, const FuncRig& rig,
                 std::uint64_t useful_records) {
  // Device counters accumulate across benchmark iterations; report the
  // per-iteration op count so variants compare directly.
  const double ops = static_cast<double>(rig.device_ops()) /
                     static_cast<double>(state.iterations());
  state.counters["device_ops"] = ops;
  state.counters["ops_per_record"] =
      ops / static_cast<double>(useful_records);
  state.counters["staging_peak_bytes"] =
      static_cast<double>(access_staging_peak_bytes());
  state.counters["staging_bound_bytes"] = static_cast<double>(
      pio::bench::sieve_buf_flag * pio::bench::aggregators_flag);
  pio::bench::report_registry(state);
}

/// Every other record of the extent (fill 0.5) — the classic interleave.
StridedSpec func_spec() {
  return StridedSpec{0, 1, 2, func_extent_records() / 2};
}

void BM_Func_DirectRead(benchmark::State& state) {
  FuncRig rig;
  const StridedSpec spec = func_spec();
  std::vector<std::byte> out(spec.total_records() * kFuncRecordBytes);
  SieveOptions options;
  options.path = SievePath::direct;
  for (auto _ : state) {
    auto st = read_strided(*rig.file, spec, out, options);
    if (!st.ok()) state.SkipWithError(st.error().to_string().c_str());
  }
  report_func(state, rig, spec.total_records());
}

void BM_Func_SievedRead(benchmark::State& state) {
  FuncRig rig;
  const StridedSpec spec = func_spec();
  std::vector<std::byte> out(spec.total_records() * kFuncRecordBytes);
  SieveOptions options;
  options.path = SievePath::sieve;
  options.buffer_bytes = pio::bench::sieve_buf_flag;
  access_staging_reset_peak();
  for (auto _ : state) {
    auto st = read_strided(*rig.file, spec, out, options);
    if (!st.ok()) state.SkipWithError(st.error().to_string().c_str());
  }
  report_func(state, rig, spec.total_records());
}

void BM_Func_CollectiveRead(benchmark::State& state) {
  FuncRig rig;
  // Two ranks splitting the interleave: records 0,4,8,... and 2,6,10,...
  // (union fill 0.5, same useful volume as the single-spec variants).
  const std::uint64_t quarter = func_extent_records() / 4;
  std::vector<StridedSpec> specs{StridedSpec{0, 1, 4, quarter},
                                 StridedSpec{2, 1, 4, quarter}};
  std::vector<std::vector<std::byte>> buffers(specs.size());
  std::vector<std::span<std::byte>> outs;
  for (std::size_t r = 0; r < specs.size(); ++r) {
    buffers[r].resize(specs[r].total_records() * kFuncRecordBytes);
    outs.emplace_back(buffers[r]);
  }
  IoSchedulerOptions sched;
  sched.policy =
      parse_queue_policy(pio::bench::sched_flag).value_or(QueuePolicy::scan);
  sched.max_merge_bytes = pio::bench::max_merge_flag;
  IoScheduler io(rig.devices, sched);
  SieveOptions options;
  options.buffer_bytes = pio::bench::sieve_buf_flag;
  options.aggregators = pio::bench::aggregators_flag;
  access_staging_reset_peak();
  for (auto _ : state) {
    auto delivered =
        collective_read_two_phase(io, *rig.file, specs, outs, options);
    if (!delivered.ok()) {
      state.SkipWithError(delivered.error().to_string().c_str());
    }
  }
  report_func(state, rig, 2 * quarter);
}

// ----------------------------------------------- Part B: virtual-time path

constexpr std::size_t kSimDevices = 8;
constexpr double kMemCopyRate = 20e6;  // bytes/s, era-appropriate

std::uint64_t sim_extent_bytes() {
  return pio::bench::quick_flag ? (3ull << 20) : (12ull << 20);
}

/// Direct: one transfer per group of `record_bytes`, every `stride`-th.
double run_sim_direct(std::uint64_t record_bytes, std::uint64_t stride) {
  sim::Engine eng;
  SimDiskArray disks(eng, kSimDevices);
  StripedLayout layout(kSimDevices, kTrack);
  const std::uint64_t groups = sim_extent_bytes() / (record_bytes * stride);
  std::vector<SimOp> ops;
  ops.reserve(groups);
  for (std::uint64_t k = 0; k < groups; ++k) {
    ops.push_back(SimOp{k * stride * record_bytes, record_bytes, 0.0});
  }
  std::vector<std::vector<SimOp>> per_process;
  per_process.push_back(std::move(ops));
  return run_processes(eng, disks, layout, std::move(per_process));
}

/// Sieved: the covering extent in sieve-buffer chunks (amplified bytes,
/// few positioning charges), then scatter charged at the memory rate.
double run_sim_sieved(std::uint64_t record_bytes, std::uint64_t stride) {
  sim::Engine eng;
  SimDiskArray disks(eng, kSimDevices);
  StripedLayout layout(kSimDevices, kTrack);
  const std::uint64_t extent = sim_extent_bytes();
  const std::uint64_t chunk = pio::bench::sieve_buf_flag;
  std::vector<SimOp> ops;
  for (std::uint64_t off = 0; off < extent; off += chunk) {
    ops.push_back(SimOp{off, std::min(chunk, extent - off), 0.0});
  }
  std::vector<std::vector<SimOp>> per_process;
  per_process.push_back(std::move(ops));
  double elapsed = run_processes(eng, disks, layout, std::move(per_process));
  elapsed += static_cast<double>(extent / stride) / kMemCopyRate;
  return elapsed;
}

/// Collective: aggregator domains transferred concurrently in chunks,
/// plus the all-to-all exchange of the useful bytes.
double run_sim_collective(std::uint64_t record_bytes, std::uint64_t stride) {
  sim::Engine eng;
  SimDiskArray disks(eng, kSimDevices);
  StripedLayout layout(kSimDevices, kTrack);
  const std::uint64_t extent = sim_extent_bytes();
  const std::uint32_t aggregators = std::max(1u, pio::bench::aggregators_flag);
  const std::uint64_t domain = (extent + aggregators - 1) / aggregators;
  const std::uint64_t chunk = pio::bench::sieve_buf_flag;
  std::vector<std::vector<SimOp>> per_process;
  for (std::uint32_t a = 0; a < aggregators; ++a) {
    const std::uint64_t lo = a * domain;
    const std::uint64_t hi = std::min<std::uint64_t>(extent, lo + domain);
    std::vector<SimOp> ops;
    for (std::uint64_t off = lo; off < hi; off += chunk) {
      ops.push_back(SimOp{off, std::min(chunk, hi - off), 0.0});
    }
    per_process.push_back(std::move(ops));
  }
  (void)record_bytes;
  double elapsed = run_processes(eng, disks, layout, std::move(per_process));
  // Exchange: useful bytes copied out of staging and into rank buffers;
  // aggregators overlap, so the critical path is one domain's share.
  elapsed += 2.0 * static_cast<double>(extent / stride) /
             static_cast<double>(aggregators) / kMemCopyRate;
  return elapsed;
}

void report_sim_variant(benchmark::State& state, double elapsed,
                        double direct_elapsed, std::uint64_t useful_bytes) {
  pio::bench::report_sim(state, elapsed, useful_bytes);
  if (elapsed > 0) {
    state.counters["speedup_vs_direct"] = direct_elapsed / elapsed;
  }
}

void BM_Sim_Direct(benchmark::State& state) {
  const auto rb = static_cast<std::uint64_t>(state.range(0));
  const auto stride = static_cast<std::uint64_t>(state.range(1));
  double t = 0;
  for (auto _ : state) t = run_sim_direct(rb, stride);
  pio::bench::report_sim(state, t, sim_extent_bytes() / stride);
}

void BM_Sim_Sieved(benchmark::State& state) {
  const auto rb = static_cast<std::uint64_t>(state.range(0));
  const auto stride = static_cast<std::uint64_t>(state.range(1));
  double t = 0;
  for (auto _ : state) t = run_sim_sieved(rb, stride);
  report_sim_variant(state, t, run_sim_direct(rb, stride),
                     sim_extent_bytes() / stride);
}

void BM_Sim_Collective(benchmark::State& state) {
  const auto rb = static_cast<std::uint64_t>(state.range(0));
  const auto stride = static_cast<std::uint64_t>(state.range(1));
  double t = 0;
  for (auto _ : state) t = run_sim_collective(rb, stride);
  report_sim_variant(state, t, run_sim_direct(rb, stride),
                     sim_extent_bytes() / stride);
}

}  // namespace

BENCHMARK(BM_Func_DirectRead);
BENCHMARK(BM_Func_SievedRead);
BENCHMARK(BM_Func_CollectiveRead);

// Record sizes from far-sub-stripe-unit to track size, at fill ratios
// 1/2 and 1/4 (the sieve's sweet spot) plus a sparse 1/8.
#define PIO_SIM_ARGS                                            \
    ->Args({512, 2})->Args({2048, 2})->Args({8192, 2})          \
    ->Args({24576, 2})->Args({512, 4})->Args({2048, 4})         \
    ->Args({8192, 4})->Args({512, 8})                           \
    ->ArgNames({"record_bytes", "stride"})

BENCHMARK(BM_Sim_Direct) PIO_SIM_ARGS;
BENCHMARK(BM_Sim_Sieved) PIO_SIM_ARGS;
BENCHMARK(BM_Sim_Collective) PIO_SIM_ARGS;

PIO_BENCH_MAIN_JSON(
    "ABLATION: data sieving + bounded two-phase collective I/O",
    "Fine-interleaved strided reads, functional and virtual-time paths.\n"
    "Direct pays one positioning charge per group; sieving reads the\n"
    "covering extent in bounded chunks and scatters in memory; the\n"
    "collective partitions the extent across aggregators and exchanges at\n"
    "20 MB/s.  Expected: >= 2x speedup for sub-stripe-unit records, with\n"
    "staging_peak_bytes <= sieve_buf * aggregators.",
    "BENCH_sieving.json")
