// pario_sim: command-line front end to the virtual-time I/O simulator —
// run the paper's experiments with your own parameters, no C++ required.
//
//   pario_sim striping  [--devices N] [--unit-kb U] [--file-mb M] [--request-kb R]
//   pario_sim selfsched [--processes P] [--devices D] [--records N]
//   pario_sim sharing   [--processes P] [--devices D] [--interleaved 0|1]
//                       [--sched fifo|scan|sstf]
//   pario_sim load      [--devices D] [--rate-from A] [--rate-to B] [--arrivals N]
//   pario_sim mtbf      [--devices N] [--mtbf-hours H] [--repair-hours R]
//   pario_sim mttdl     [--devices N] [--mtbf-hours H] [--repair-hours R]
//                       [--mission-hours M] [--trials T]
//   pario_sim iosched   [--devices D] [--records N] [--streams S]
//                       [--sched fifo|scan|sstf] [--max-merge BYTES]
//                       [--op-cost-us C]
//   pario_sim twophase  [--ranks R] [--devices D] [--file-mb M]
//                       [--stride S] [--sieve-buf BYTES] [--aggregators A]
//   pario_sim server    [--clients C] [--devices D] [--dispatchers K]
//                       [--queue Q] [--ops M] [--block-kb B] [--compute-ms T]
//
// Observability flags (any experiment):
//   --trace FILE   write a Chrome/Perfetto trace_event JSON of the run
//                  (virtual-time spans per device request + queue-depth
//                  tracks; open at https://ui.perfetto.dev)
//   --metrics      print the metrics-registry snapshot after the run
//
// All results are deterministic virtual-time outputs of the calibrated
// 1989 disk model (see src/device/disk_model.hpp).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "core/io_scheduler.hpp"
#include "core/parallel_file.hpp"
#include "device/ram_disk.hpp"
#include "device/throttle_device.hpp"
#include "layout/layout.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/reqtrace.hpp"
#include "obs/trace.hpp"
#include "reliability/mtbf.hpp"
#include "sim/channel.hpp"
#include "sim/resource.hpp"
#include "util/rng.hpp"
#include "workload/sim_process.hpp"

using namespace pio;

namespace {

constexpr std::uint64_t kTrack = 24 * 1024;

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) continue;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_.emplace_back(argv[i] + 2, argv[i + 1]);
        ++i;
      } else {
        values_.emplace_back(argv[i] + 2, "");  // valueless boolean flag
      }
    }
  }
  std::uint64_t u64(const std::string& key, std::uint64_t fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return std::strtoull(v.c_str(), nullptr, 10);
    }
    return fallback;
  }
  double f64(const std::string& key, double fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return std::strtod(v.c_str(), nullptr);
    }
    return fallback;
  }
  std::optional<std::string> str(const std::string& key) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return v;
    }
    return std::nullopt;
  }
  bool has(const std::string& key) const { return str(key).has_value(); }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

int usage() {
  std::fprintf(stderr, "%s",
               "usage: pario_sim <experiment> [--key value ...]\n"
               "  striping  --devices N --unit-kb U --file-mb M --request-kb R\n"
               "  selfsched --processes P --devices D --records N\n"
               "  sharing   --processes P --devices D --interleaved 0|1\n"
               "            --sched fifo|scan|sstf (or legacy --scan 0|1)\n"
               "  load      --devices D --rate-from A --rate-to B --arrivals N\n"
               "  mtbf      --devices N --mtbf-hours H --repair-hours R\n"
               "  mttdl     --devices N --mtbf-hours H --repair-hours R\n"
               "            --mission-hours M --trials T\n"
               "  iosched   --devices D --records N --streams S\n"
               "            --sched fifo|scan|sstf --max-merge BYTES"
               " --op-cost-us C\n"
               "  twophase  --ranks R --devices D --file-mb M --stride S\n"
               "            --sieve-buf BYTES --aggregators A\n"
               "  server    --clients C --devices D --dispatchers K --queue Q\n"
               "            --ops M --block-kb B --compute-ms T\n"
               "observability (any experiment):\n"
               "  --trace FILE   export Chrome/Perfetto trace_event JSON\n"
               "  --metrics      print the metrics registry after the run\n"
               "  --profile      print the request-lifecycle stage report\n"
               "                 (threaded experiments: iosched, server)\n");
  return 2;
}

// ------------------------------------------------------------- striping

int cmd_striping(const Flags& flags) {
  const auto max_devices = flags.u64("devices", 16);
  const std::uint64_t unit = flags.u64("unit-kb", 24) * 1024;
  const std::uint64_t file_bytes = flags.u64("file-mb", 12) << 20;
  const std::uint64_t request = flags.u64("request-kb", 192) * 1024;
  std::printf("Striped sequential read: %llu MB file, %llu KB requests, "
              "%llu KB stripe unit\n",
              static_cast<unsigned long long>(file_bytes >> 20),
              static_cast<unsigned long long>(request >> 10),
              static_cast<unsigned long long>(unit >> 10));
  std::printf("%8s %12s %10s\n", "devices", "sim_seconds", "MB/s");
  for (std::uint64_t d = 1; d <= max_devices; d *= 2) {
    sim::Engine eng;
    SimDiskArray disks(eng, static_cast<std::size_t>(d));
    StripedLayout layout(static_cast<std::size_t>(d), unit);
    std::vector<SimOp> ops;
    for (std::uint64_t off = 0; off < file_bytes; off += request) {
      ops.push_back(SimOp{off, std::min(request, file_bytes - off), 0.0});
    }
    const double elapsed = run_processes(eng, disks, layout, {std::move(ops)});
    std::printf("%8llu %12.3f %10.2f\n", static_cast<unsigned long long>(d),
                elapsed, static_cast<double>(file_bytes) / elapsed / 1e6);
  }
  return 0;
}

// ------------------------------------------------------------- selfsched

struct SsShared {
  sim::Resource lock;
  std::uint64_t next = 0;
  explicit SsShared(sim::Engine& eng) : lock(eng, 1) {}
};

sim::Task ss_worker(sim::Engine& eng, SimDiskArray& disks,
                    const StripedLayout& layout, SsShared& shared,
                    std::uint64_t records, std::uint64_t record_bytes,
                    bool overlapped, sim::WaitGroup& wg) {
  for (;;) {
    co_await shared.lock.acquire();
    if (shared.next >= records) {
      shared.lock.release();
      break;
    }
    const std::uint64_t record = shared.next++;
    co_await eng.delay(50e-6);
    std::vector<DiskSegment> segs;
    for (const Segment& s :
         layout.map(record * record_bytes, record_bytes)) {
      segs.push_back(DiskSegment{s.device, s.offset, s.length});
    }
    if (overlapped) {
      shared.lock.release();
      co_await parallel_io(eng, disks, std::move(segs));
    } else {
      co_await parallel_io(eng, disks, std::move(segs));
      shared.lock.release();
    }
  }
  wg.done();
}

int cmd_selfsched(const Flags& flags) {
  const auto max_processes = flags.u64("processes", 16);
  const auto devices = static_cast<std::size_t>(flags.u64("devices", 8));
  const std::uint64_t records = flags.u64("records", 400);
  const std::uint64_t record_bytes = 2 * kTrack;
  std::printf("Self-scheduled read of %llu x %llu KB records on %zu disks\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(record_bytes >> 10), devices);
  std::printf("%10s %16s %16s\n", "processes", "serialized rec/s",
              "overlapped rec/s");
  for (std::uint64_t p = 1; p <= max_processes; p *= 2) {
    double rate[2];
    for (int variant = 0; variant < 2; ++variant) {
      sim::Engine eng;
      SimDiskArray disks(eng, devices);
      StripedLayout layout(devices, kTrack);
      SsShared shared(eng);
      sim::WaitGroup wg(eng);
      wg.add(p);
      for (std::uint64_t i = 0; i < p; ++i) {
        eng.spawn(ss_worker(eng, disks, layout, shared, records, record_bytes,
                            variant == 1, wg));
      }
      rate[variant] = static_cast<double>(records) / eng.run();
    }
    std::printf("%10llu %16.1f %16.1f\n", static_cast<unsigned long long>(p),
                rate[0], rate[1]);
  }
  return 0;
}

// --------------------------------------------------------------- sharing

// Map the CLI --sched value onto either scheduler's policy enum.
std::optional<QueueDiscipline> sim_discipline(const Flags& flags,
                                              bool legacy_scan) {
  QueueDiscipline disc =
      legacy_scan ? QueueDiscipline::scan : QueueDiscipline::fifo;
  if (const auto name = flags.str("sched")) {
    const auto policy = parse_queue_policy(*name);
    if (!policy) return std::nullopt;
    switch (*policy) {
      case QueuePolicy::fifo: disc = QueueDiscipline::fifo; break;
      case QueuePolicy::scan: disc = QueueDiscipline::scan; break;
      case QueuePolicy::sstf: disc = QueueDiscipline::sstf; break;
    }
  }
  return disc;
}

const char* discipline_name(QueueDiscipline d) {
  switch (d) {
    case QueueDiscipline::scan: return "SCAN";
    case QueueDiscipline::sstf: return "SSTF";
    default: return "FIFO";
  }
}

int cmd_sharing(const Flags& flags) {
  const auto processes = static_cast<std::size_t>(flags.u64("processes", 16));
  const auto devices = static_cast<std::size_t>(flags.u64("devices", 4));
  const bool interleaved = flags.u64("interleaved", 0) != 0;
  const std::uint64_t blocks = flags.u64("blocks-per-process", 24);
  const std::uint64_t block_bytes = 2 * kTrack;
  const auto discipline = sim_discipline(flags, flags.u64("scan", 0) != 0);
  if (!discipline) return usage();

  sim::Engine eng;
  SimDiskArray disks(eng, devices, {}, {}, *discipline);
  std::unique_ptr<Layout> layout;
  if (interleaved) {
    layout = make_interleaved_layout(devices, block_bytes);
  } else {
    layout = std::make_unique<BlockedLayout>(processes, blocks * block_bytes,
                                             devices);
  }
  std::vector<std::vector<SimOp>> ops;
  for (std::size_t p = 0; p < processes; ++p) {
    std::vector<SimOp> mine;
    for (std::uint64_t b = 0; b < blocks; ++b) {
      const std::uint64_t block =
          interleaved ? p + b * processes : p * blocks + b;
      mine.push_back(SimOp{block * block_bytes, block_bytes, 0.002});
    }
    ops.push_back(std::move(mine));
  }
  const double elapsed = run_processes(eng, disks, *layout, std::move(ops));
  OnlineStats seeks;
  for (std::size_t d = 0; d < devices; ++d) seeks.merge(disks[d].seek_stats());
  const std::uint64_t bytes = processes * blocks * block_bytes;
  std::printf("%zu processes on %zu devices (%s layout, %s queue):\n",
              processes, devices, interleaved ? "interleaved" : "blocked",
              discipline_name(*discipline));
  std::printf("  makespan %.3f s, aggregate %.2f MB/s, mean seek %.2f ms\n",
              elapsed, static_cast<double>(bytes) / elapsed / 1e6,
              seeks.mean() * 1e3);
  return 0;
}

// ------------------------------------------------------------------ load

struct LoadShared {
  OnlineStats response;
  sim::WaitGroup wg;
  explicit LoadShared(sim::Engine& eng) : wg(eng) {}
};

sim::Task load_txn(sim::Engine& eng, SimDiskArray& disks, const Layout& layout,
                   std::uint64_t block, std::uint64_t block_bytes,
                   LoadShared& shared) {
  const double t0 = eng.now();
  std::vector<DiskSegment> segs;
  for (const Segment& s : layout.map(block * block_bytes, block_bytes)) {
    segs.push_back(DiskSegment{s.device, s.offset, s.length});
  }
  co_await parallel_io(eng, disks, std::move(segs));
  shared.response.add(eng.now() - t0);
  shared.wg.done();
}

int cmd_load(const Flags& flags) {
  const auto devices = static_cast<std::size_t>(flags.u64("devices", 4));
  const double rate_from = flags.f64("rate-from", 5);
  const double rate_to = flags.f64("rate-to", 80);
  const std::uint64_t arrivals = flags.u64("arrivals", 3000);
  const std::uint64_t block_bytes = 2 * kTrack;
  std::printf("Open load on %zu devices, 48 KB transactions\n", devices);
  std::printf("%12s %14s %14s\n", "offered/s", "mean resp ms", "max resp ms");
  for (double rate = rate_from; rate <= rate_to + 1e-9; rate *= 2) {
    sim::Engine eng;
    SimDiskArray disks(eng, devices);
    auto layout = make_interleaved_layout(devices, block_bytes);
    LoadShared shared(eng);
    shared.wg.add(arrivals);
    Rng rng{0x10AD};
    double t = 0;
    for (std::uint64_t i = 0; i < arrivals; ++i) {
      t += rng.exponential(1.0 / rate);
      const std::uint64_t block = rng.uniform_u64(256);
      eng.schedule_callback(t, [&eng, &disks, &layout, block, &shared] {
        eng.spawn(load_txn(eng, disks, *layout, block, 2 * kTrack, shared));
      });
    }
    eng.run();
    std::printf("%12.1f %14.2f %14.2f\n", rate, shared.response.mean() * 1e3,
                shared.response.max() * 1e3);
  }
  return 0;
}

// --------------------------------------------------------------- iosched

// Functional-path demo of the IoScheduler's disk-queue policies and
// request coalescing.  S streams each read a contiguous region of a
// striped file one 64-byte record at a time, enqueued round-robin across
// streams (the classic fine-interleaved access pattern of §3), against
// devices that charge a fixed positioning cost per OPERATION.  FIFO with
// coalescing off services one record per device op; SCAN/SSTF with
// merging folds abutting records into vectored ops and pays the
// positioning cost once per run.
struct IoschedResult {
  double wall_ms = 0.0;
  std::uint64_t device_ops = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t merged_bytes = 0;
};

IoschedResult run_iosched(std::size_t devices, std::uint64_t records,
                          std::uint64_t streams, double op_cost_us,
                          IoSchedulerOptions options) {
  constexpr std::uint32_t kRecord = 64;
  DeviceArray array;
  for (std::size_t d = 0; d < devices; ++d) {
    array.add(std::make_unique<ThrottledDevice>(
        std::make_unique<RamDisk>("ram" + std::to_string(d), 64ull << 20),
        op_cost_us));
  }
  FileMeta meta;
  meta.name = "iosched-demo";
  meta.organization = Organization::sequential;
  meta.layout_kind = LayoutKind::striped;
  meta.record_bytes = kRecord;
  meta.stripe_unit = 256;
  meta.capacity_records = records;
  ParallelFile file(meta, array, std::vector<std::uint64_t>(devices, 0));

  obs::Counter& coalesced =
      obs::MetricsRegistry::global().counter("iosched.coalesced");
  obs::Counter& merged =
      obs::MetricsRegistry::global().counter("iosched.merged_bytes");
  const std::uint64_t coalesced0 = coalesced.value();
  const std::uint64_t merged0 = merged.value();

  std::vector<std::byte> out(records * kRecord);
  const std::uint64_t per_stream = records / streams;
  const auto t0 = std::chrono::steady_clock::now();
  {
    IoScheduler io(array, options);
    IoBatch batch;
    for (std::uint64_t wave = 0; wave < per_stream; ++wave) {
      for (std::uint64_t s = 0; s < streams; ++s) {
        const std::uint64_t r = s * per_stream + wave;
        io.read_records(file, r, 1,
                        std::span(out.data() + r * kRecord, kRecord), batch);
      }
    }
    if (batch.wait().code() != Errc::ok) {
      std::fprintf(stderr, "iosched: batch failed\n");
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  IoschedResult res;
  res.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (std::size_t d = 0; d < devices; ++d) {
    res.device_ops += array[d].counters().reads.load();
  }
  res.coalesced = coalesced.value() - coalesced0;
  res.merged_bytes = merged.value() - merged0;
  return res;
}

int cmd_iosched(const Flags& flags) {
  const auto devices = static_cast<std::size_t>(flags.u64("devices", 4));
  const std::uint64_t streams = flags.u64("streams", 8);
  std::uint64_t records = flags.u64("records", 4096);
  records -= records % (streams ? streams : 1);
  const double op_cost_us = flags.f64("op-cost-us", 20.0);

  IoSchedulerOptions configured;
  configured.max_merge_bytes = flags.u64("max-merge", 256);
  if (const auto name = flags.str("sched")) {
    const auto policy = parse_queue_policy(*name);
    if (!policy) return usage();
    configured.policy = *policy;
  } else {
    configured.policy = QueuePolicy::scan;
  }

  std::printf("iosched: %llu x 64 B records, %llu interleaved streams, "
              "%zu devices, %.1f us/op positioning cost\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(streams), devices, op_cost_us);
  std::printf("%6s %10s %12s %12s %10s %10s\n", "policy", "merge_B",
              "device_ops", "ops/record", "wall_ms", "coalesced");
  const IoSchedulerOptions baseline{};  // fifo, merging off: historic path
  for (const IoSchedulerOptions& opt : {baseline, configured}) {
    const IoschedResult r =
        run_iosched(devices, records, streams, op_cost_us, opt);
    std::printf("%6s %10llu %12llu %12.3f %10.2f %10llu\n",
                std::string(queue_policy_name(opt.policy)).c_str(),
                static_cast<unsigned long long>(opt.max_merge_bytes),
                static_cast<unsigned long long>(r.device_ops),
                static_cast<double>(r.device_ops) /
                    static_cast<double>(records ? records : 1),
                r.wall_ms, static_cast<unsigned long long>(r.coalesced));
  }
  return 0;
}

// -------------------------------------------------------------- twophase

// Virtual-time comparison of the three strided-read strategies across
// record sizes: direct (every rank issues one transfer per record),
// sieved (every rank independently reads its covering extent in bounded
// chunks — positioning fixed, but R-fold read amplification), and the
// two-phase collective (aggregators read the extent once, concurrently,
// and redistribute in memory at a 1989-era 20 MB/s copy rate).
int cmd_twophase(const Flags& flags) {
  const auto devices = static_cast<std::size_t>(flags.u64("devices", 8));
  const std::uint64_t ranks = flags.u64("ranks", 4);
  const std::uint64_t file_bytes = flags.u64("file-mb", 12) << 20;
  const std::uint64_t sieve_buf = flags.u64("sieve-buf", 256 * 1024);
  const std::uint64_t aggregators = flags.u64("aggregators", 4);
  const std::uint64_t stride = flags.u64("stride", 2);
  if (ranks == 0 || stride == 0 || aggregators == 0 || sieve_buf == 0) {
    return usage();
  }
  constexpr double kMemCopyRate = 20e6;

  std::printf("Two-phase collective read: %llu ranks, %zu devices, "
              "%llu MB extent, union fill 1/%llu, %llu KB sieve buffer, "
              "%llu aggregators\n",
              static_cast<unsigned long long>(ranks), devices,
              static_cast<unsigned long long>(file_bytes >> 20),
              static_cast<unsigned long long>(stride),
              static_cast<unsigned long long>(sieve_buf >> 10),
              static_cast<unsigned long long>(aggregators));
  std::printf("%12s %10s %10s %10s %10s %10s\n", "record_B", "direct_s",
              "sieved_s", "twophase_s", "sieve_x", "twophase_x");

  for (std::uint64_t record_bytes : {512ull, 2048ull, 8192ull, 24576ull}) {
    // Direct: rank r transfers records (k*ranks + r) * stride, one
    // positioning charge per record.
    double direct;
    {
      sim::Engine eng;
      SimDiskArray disks(eng, devices);
      StripedLayout layout(devices, kTrack);
      const std::uint64_t groups = file_bytes / (record_bytes * stride);
      std::vector<std::vector<SimOp>> ops(ranks);
      for (std::uint64_t g = 0; g < groups; ++g) {
        ops[g % ranks].push_back(
            SimOp{g * stride * record_bytes, record_bytes, 0.0});
      }
      direct = run_processes(eng, disks, layout, std::move(ops));
    }
    // Sieved, uncoordinated: every rank reads the whole covering extent
    // in sieve-buf chunks (R-fold amplification).
    double sieved;
    {
      sim::Engine eng;
      SimDiskArray disks(eng, devices);
      StripedLayout layout(devices, kTrack);
      std::vector<std::vector<SimOp>> ops;
      for (std::uint64_t r = 0; r < ranks; ++r) {
        std::vector<SimOp> mine;
        for (std::uint64_t off = 0; off < file_bytes; off += sieve_buf) {
          mine.push_back(
              SimOp{off, std::min(sieve_buf, file_bytes - off), 0.0});
        }
        ops.push_back(std::move(mine));
      }
      sieved = run_processes(eng, disks, layout, std::move(ops));
    }
    // Collective: aggregator domains read the extent exactly once,
    // concurrently, then exchange the useful bytes.
    double twophase;
    {
      sim::Engine eng;
      SimDiskArray disks(eng, devices);
      StripedLayout layout(devices, kTrack);
      const std::uint64_t domain = (file_bytes + aggregators - 1) / aggregators;
      std::vector<std::vector<SimOp>> ops;
      for (std::uint64_t a = 0; a < aggregators; ++a) {
        const std::uint64_t lo = a * domain;
        const std::uint64_t hi = std::min(file_bytes, lo + domain);
        std::vector<SimOp> mine;
        for (std::uint64_t off = lo; off < hi; off += sieve_buf) {
          mine.push_back(SimOp{off, std::min(sieve_buf, hi - off), 0.0});
        }
        ops.push_back(std::move(mine));
      }
      twophase = run_processes(eng, disks, layout, std::move(ops));
      twophase += 2.0 * static_cast<double>(file_bytes / stride) /
                  static_cast<double>(aggregators) / kMemCopyRate;
    }
    std::printf("%12llu %10.3f %10.3f %10.3f %9.1fx %9.1fx\n",
                static_cast<unsigned long long>(record_bytes), direct, sieved,
                twophase, direct / sieved, direct / twophase);
  }
  return 0;
}

// ---------------------------------------------------------------- server

// Virtual-time model of the dedicated I/O server (§4, src/server/): C
// compute clients hand requests to K dispatcher processes over a BOUNDED
// queue (sim::Channel — a full queue blocks the sender, the submit-side
// backpressure), and dispatchers fan each request's segments across the
// devices.  The direct baseline is the same clients doing their own
// synchronous I/O (compute and transfer strictly serialized per client).
struct ServerSimReq {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

struct ServerSimShared {
  std::size_t active_clients = 0;
};

sim::Task server_sim_dispatcher(sim::Engine& eng, SimDiskArray& disks,
                                const StripedLayout& layout,
                                sim::Channel<ServerSimReq>& ch) {
  for (;;) {
    std::optional<ServerSimReq> req = co_await ch.receive();
    if (!req) break;  // closed and drained
    std::vector<DiskSegment> segs;
    for (const Segment& s : layout.map(req->offset, req->bytes)) {
      segs.push_back(DiskSegment{s.device, s.offset, s.length});
    }
    co_await parallel_io(eng, disks, std::move(segs));
  }
}

sim::Task server_sim_client(sim::Engine& eng, sim::Channel<ServerSimReq>& ch,
                            std::vector<ServerSimReq> ops, double compute_s,
                            ServerSimShared& shared) {
  for (const ServerSimReq& op : ops) {
    co_await eng.delay(compute_s);
    co_await ch.send(op);  // asynchronous submit; blocks only when full
  }
  // Last client out closes the channel so dispatchers drain and exit.
  if (--shared.active_clients == 0) ch.close();
}

int cmd_server(const Flags& flags) {
  const auto max_clients = flags.u64("clients", 8);
  const auto devices = static_cast<std::size_t>(flags.u64("devices", 4));
  // Enough dispatchers to keep every device busy even though each one
  // barriers on its request's slowest segment (striped-transfer semantics);
  // fewer dispatchers than concurrent clients leaves devices idling.
  const auto dispatchers = static_cast<std::size_t>(flags.u64("dispatchers", 8));
  const auto queue = static_cast<std::size_t>(flags.u64("queue", 16));
  const std::uint64_t ops_per_client = flags.u64("ops", 64);
  const std::uint64_t block_bytes = flags.u64("block-kb", 48) * 1024;
  const double compute_s = flags.f64("compute-ms", 2.0) * 1e-3;
  if (max_clients == 0 || dispatchers == 0 || queue == 0 ||
      ops_per_client == 0 || block_bytes == 0) {
    return usage();
  }

  std::printf("I/O server: %zu devices, %zu dispatchers, queue %zu; "
              "%llu x %llu KB ops per client, %.1f ms compute per op\n",
              devices, dispatchers, queue,
              static_cast<unsigned long long>(ops_per_client),
              static_cast<unsigned long long>(block_bytes >> 10),
              compute_s * 1e3);
  std::printf("%8s %10s %12s %10s %12s %9s\n", "clients", "direct_s",
              "direct MB/s", "server_s", "server MB/s", "speedup");

  for (std::uint64_t c = 1; c <= max_clients; c *= 2) {
    const std::uint64_t bytes = c * ops_per_client * block_bytes;
    // Direct: each client computes then transfers, serially.
    double direct;
    {
      sim::Engine eng;
      SimDiskArray disks(eng, devices);
      StripedLayout layout(devices, kTrack);
      std::vector<std::vector<SimOp>> ops;
      for (std::uint64_t p = 0; p < c; ++p) {
        std::vector<SimOp> mine;
        for (std::uint64_t i = 0; i < ops_per_client; ++i) {
          mine.push_back(SimOp{(p * ops_per_client + i) * block_bytes,
                               block_bytes, compute_s});
        }
        ops.push_back(std::move(mine));
      }
      direct = run_processes(eng, disks, layout, std::move(ops));
    }
    // Server-mediated: submits overlap the clients' next compute phase.
    double server;
    {
      sim::Engine eng;
      SimDiskArray disks(eng, devices);
      StripedLayout layout(devices, kTrack);
      sim::Channel<ServerSimReq> ch(eng, queue);
      ServerSimShared shared;
      shared.active_clients = c;
      for (std::size_t k = 0; k < dispatchers; ++k) {
        eng.spawn(server_sim_dispatcher(eng, disks, layout, ch));
      }
      for (std::uint64_t p = 0; p < c; ++p) {
        std::vector<ServerSimReq> mine;
        for (std::uint64_t i = 0; i < ops_per_client; ++i) {
          mine.push_back(ServerSimReq{
              (p * ops_per_client + i) * block_bytes, block_bytes});
        }
        eng.spawn(server_sim_client(eng, ch, std::move(mine), compute_s,
                                    shared));
      }
      server = eng.run();
    }
    std::printf("%8llu %10.3f %12.2f %10.3f %12.2f %8.2fx\n",
                static_cast<unsigned long long>(c), direct,
                static_cast<double>(bytes) / direct / 1e6, server,
                static_cast<double>(bytes) / server / 1e6, direct / server);
  }
  return 0;
}

// ------------------------------------------------------------------ mtbf

int cmd_mtbf(const Flags& flags) {
  const std::uint64_t max_devices = flags.u64("devices", 200);
  const double mtbf = flags.f64("mtbf-hours", kPaperDeviceMtbfHours);
  const double repair = flags.f64("repair-hours", 24);
  Rng rng{2024};
  std::printf("Device MTBF %.0f h, repair window %.0f h\n", mtbf, repair);
  std::printf("%8s %12s %12s %14s %16s\n", "devices", "MTBF h", "MC MTBF h",
              "failures/yr", "MTTDL(parity) h");
  for (std::uint64_t n = 1; n <= max_devices; n *= 2) {
    const auto mc = simulate_first_failure(rng, n, mtbf, 2000);
    std::printf("%8llu %12.0f %12.0f %14.2f %16.0f\n",
                static_cast<unsigned long long>(n), series_mtbf_hours(mtbf, n),
                mc.mean(), failures_per_year(mtbf, n),
                n >= 2 ? protected_mttdl_hours(mtbf, n, repair) : 0.0);
  }
  return 0;
}

// ----------------------------------------------------------------- mttdl

/// Cross-check of the closed-form MTTDL model against the Monte-Carlo
/// simulator for parity-protected arrays: at each device count, print the
/// analytic mean time to data loss and the mission-window loss probability
/// both ways (analytic 1 - exp(-mission/MTTDL) vs sampled second-failure-
/// during-repair trials).
int cmd_mttdl(const Flags& flags) {
  const std::uint64_t max_devices = flags.u64("devices", 64);
  const double mtbf = flags.f64("mtbf-hours", kPaperDeviceMtbfHours);
  const double repair = flags.f64("repair-hours", 24);
  const double mission = flags.f64("mission-hours", kHoursPerYear);
  const std::uint64_t trials = flags.u64("trials", 10000);
  Rng rng{1989};
  std::printf(
      "Device MTBF %.0f h, repair window %.0f h, mission %.0f h, %llu "
      "trials\n",
      mtbf, repair, mission, static_cast<unsigned long long>(trials));
  std::printf("%8s %12s %14s %16s %14s %14s\n", "devices", "failures/yr",
              "MTTDL(parity) h", "MTTDL years", "P(loss) model",
              "P(loss) MC");
  for (std::uint64_t n = 2; n <= max_devices; n *= 2) {
    const double mttdl = protected_mttdl_hours(mtbf, n, repair);
    const double p_model = 1.0 - std::exp(-mission / mttdl);
    const double p_mc = simulate_protected_loss_probability(
        rng, n, mtbf, repair, mission, trials);
    std::printf("%8llu %12.2f %14.0f %16.1f %14.4f %14.4f\n",
                static_cast<unsigned long long>(n),
                failures_per_year(mtbf, n), mttdl, mttdl / kHoursPerYear,
                p_model, p_mc);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Flags flags(argc, argv, 2);

  const std::optional<std::string> trace_path = flags.str("trace");
  if (trace_path && trace_path->empty()) return usage();
  if (trace_path) obs::Tracer::global().set_enabled(true);
  const bool profile = flags.has("profile");
  if (profile) obs::Profiler::global().set_enabled(true);

  int rc;
  if (cmd == "striping") {
    rc = cmd_striping(flags);
  } else if (cmd == "selfsched") {
    rc = cmd_selfsched(flags);
  } else if (cmd == "sharing") {
    rc = cmd_sharing(flags);
  } else if (cmd == "load") {
    rc = cmd_load(flags);
  } else if (cmd == "iosched") {
    rc = cmd_iosched(flags);
  } else if (cmd == "twophase") {
    rc = cmd_twophase(flags);
  } else if (cmd == "server") {
    rc = cmd_server(flags);
  } else if (cmd == "mtbf") {
    rc = cmd_mtbf(flags);
  } else if (cmd == "mttdl") {
    rc = cmd_mttdl(flags);
  } else {
    return usage();
  }

  if (trace_path) {
    obs::Tracer& tracer = obs::Tracer::global();
    if (!tracer.write_chrome_json_file(*trace_path)) {
      std::fprintf(stderr, "pario_sim: cannot write trace to %s\n",
                   trace_path->c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "trace: %zu events (%llu dropped) -> %s "
                 "(open at https://ui.perfetto.dev)\n",
                 tracer.size(),
                 static_cast<unsigned long long>(tracer.dropped()),
                 trace_path->c_str());
  }
  if (flags.has("metrics")) {
    std::printf("\n== metrics ==\n%s",
                pio::obs::MetricsRegistry::global().to_text().c_str());
  }
  if (profile) {
    obs::Profiler& profiler = obs::Profiler::global();
    profiler.set_enabled(false);
    std::printf("\n%s",
                obs::profile_to_text(
                    obs::build_profile_report(profiler.snapshot()))
                    .c_str());
  }
  return rc;
}
