// pario: command-line utility for parallel file systems on FileDisk
// arrays — the "utility software and operating system commands" of §2,
// which are sequential programs using the global view.
//
//   pario <dir> format --devices N --device-mb M
//   pario <dir> ls
//   pario <dir> stat <name>
//   pario <dir> df
//   pario <dir> create <name> --org S|PS|IS|SS|GDA|PDA --record-bytes B
//                      --capacity N [--partitions P] [--records-per-block R]
//   pario <dir> import <name> <host-file>     (record-padded)
//   pario <dir> export <name> <host-file>
//   pario <dir> convert <src> <dst>           (copy via global views)
//   pario <dir> rm <name>
//   pario <dir> serve [--clients C] [--ops N] [--dispatchers K]
//                     [--queue Q] [--record-bytes B] [--records-per-op R]
//                     (in-process I/O-server smoke: C client threads push
//                     async requests through an IoServer on this array)
//
// The device directory holds disk0.img..diskN-1.img plus pario.meta
// (device count/size), so later invocations re-open the same array.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/faulty_transport.hpp"
#include "core/access_methods.hpp"
#include "core/file_system.hpp"
#include "core/global_view.hpp"
#include "device/faulty_device.hpp"
#include "device/file_disk.hpp"
#include "device/parity_group.hpp"
#include "device/ram_disk.hpp"
#include "obs/bridge.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/reqtrace.hpp"
#include "obs/sampler.hpp"
#include "reliability/resilient_array.hpp"
#include "server/client.hpp"
#include "server/io_server.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

using namespace pio;

namespace {

int usage() {
  std::fprintf(stderr, "%s",
               "usage: pario <dir> <command> [args]\n"
               "  format --devices N --device-mb M\n"
               "  ls | df | stat <name> | rm <name>\n"
               "  stats [--json] [--profile]   (per-device I/O counters +\n"
               "        cache/metric snapshot; --profile appends the\n"
               "        request-lifecycle stage report)\n"
               "  create <name> --org S|PS|IS|SS|GDA|PDA --record-bytes B\n"
               "         --capacity N [--partitions P] [--records-per-block R]\n"
               "  import <name> <host-file> | export <name> <host-file>\n"
               "  convert <src> <dst>\n"
               "  strided read <name> [host-file] --start S --block B\n"
               "          --stride T --count C [--sieve-buf BYTES]\n"
               "          [--min-fill F] [--force direct|sieve]\n"
               "  strided write <name> <host-file> (same spec/sieve flags)\n"
               "  serve [--clients C] [--ops N] [--dispatchers K] [--queue Q]\n"
               "        [--record-bytes B] [--records-per-op R] [--profile]\n"
               "        (I/O-server smoke: async client traffic + drain;\n"
               "        --profile prints the per-stage bottleneck report)\n"
               "  chaos [--devices N] [--device-kb K] [--ops N] [--kill-op I]\n"
               "        [--seed S]  (in-memory fault-tolerance demo: a scripted\n"
               "        fault kills one parity-protected device mid-workload;\n"
               "        degraded service + online rebuild keep every op correct)\n"
               "  cluster [--data-servers S] [--distribution block|cyclic|strided]\n"
               "          [--clients C] [--ops N] [--records R] [--record-bytes B]\n"
               "          [--seed X]  (in-memory multi-server demo: C client\n"
               "          threads route record ops over S data servers through\n"
               "          the metadata service + client-side router; every byte\n"
               "          is checked against a host-side model; --chaos runs the\n"
               "          same workload over a fault-injecting transport with a\n"
               "          mid-run server outage: deadlines, retries, reconnects,\n"
               "          and the at-most-once window must still verify OK)\n");
  return 2;
}

int fail(const std::string& what, const Error& error) {
  std::fprintf(stderr, "pario: %s: %s\n", what.c_str(),
               error.to_string().c_str());
  return 1;
}

std::optional<Organization> parse_org(const std::string& s) {
  if (s == "S") return Organization::sequential;
  if (s == "PS") return Organization::partitioned;
  if (s == "IS") return Organization::interleaved;
  if (s == "SS") return Organization::self_scheduled;
  if (s == "GDA") return Organization::global_direct;
  if (s == "PDA") return Organization::partitioned_direct;
  return std::nullopt;
}

/// Minimal flag scanner: --key value pairs after positional args.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        values_.emplace_back(argv[i] + 2, argv[i + 1]);
      }
    }
  }
  std::optional<std::string> get(const std::string& key) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return v;
    }
    return std::nullopt;
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    auto v = get(key);
    return v ? std::strtoull(v->c_str(), nullptr, 10) : fallback;
  }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

struct ArrayMeta {
  std::uint64_t devices = 0;
  std::uint64_t device_bytes = 0;
};

std::string meta_path(const std::string& dir) { return dir + "/pario.meta"; }

bool write_array_meta(const std::string& dir, const ArrayMeta& meta) {
  std::ofstream out(meta_path(dir), std::ios::trunc);
  out << meta.devices << ' ' << meta.device_bytes << '\n';
  return static_cast<bool>(out);
}

std::optional<ArrayMeta> read_array_meta(const std::string& dir) {
  std::ifstream in(meta_path(dir));
  ArrayMeta meta;
  if (in >> meta.devices >> meta.device_bytes) return meta;
  return std::nullopt;
}

Result<DeviceArray> open_array(const std::string& dir) {
  auto meta = read_array_meta(dir);
  if (!meta) {
    return make_error(Errc::not_found,
                      dir + " is not a pario device directory (run format)");
  }
  return open_file_array(dir, static_cast<std::size_t>(meta->devices),
                         meta->device_bytes);
}

int cmd_format(const std::string& dir, const Flags& flags) {
  ArrayMeta meta;
  meta.devices = flags.get_u64("devices", 4);
  meta.device_bytes = flags.get_u64("device-mb", 16) << 20;
  auto arr = open_file_array(dir, static_cast<std::size_t>(meta.devices),
                             meta.device_bytes);
  if (!arr.ok()) return fail("format", arr.error());
  auto fs = FileSystem::format(*arr);
  if (!fs.ok()) return fail("format", fs.error());
  if (!write_array_meta(dir, meta)) {
    std::fprintf(stderr, "pario: cannot write %s\n", meta_path(dir).c_str());
    return 1;
  }
  std::printf("formatted %llu devices x %llu MB in %s\n",
              static_cast<unsigned long long>(meta.devices),
              static_cast<unsigned long long>(meta.device_bytes >> 20),
              dir.c_str());
  return 0;
}

int cmd_ls(FileSystem& fs) {
  std::printf("%-20s %-4s %-11s %-12s %10s %10s %6s\n", "name", "org",
              "category", "layout", "records", "capacity", "procs");
  for (const FileMeta& meta : fs.list()) {
    // record_count lives in the catalog; reopen cheaply for the number.
    std::uint64_t records = 0;
    if (auto file = fs.open(meta.name); file.ok()) {
      records = (*file)->meta().organization == Organization::partitioned
                    ? (*file)->total_partition_records()
                    : (*file)->record_count();
    }
    std::printf("%-20s %-4s %-11s %-12s %10llu %10llu %6u\n",
                meta.name.c_str(),
                std::string(organization_name(meta.organization)).c_str(),
                std::string(category_name(meta.category)).c_str(),
                std::string(layout_kind_name(meta.layout_kind)).c_str(),
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(meta.capacity_records),
                meta.partitions);
  }
  return 0;
}

int cmd_df(FileSystem& fs) {
  std::printf("%-8s %12s\n", "device", "free-bytes");
  for (std::size_t d = 0; d < fs.device_count(); ++d) {
    std::printf("disk%-4zu %12llu\n", d,
                static_cast<unsigned long long>(fs.free_bytes(d)));
  }
  return 0;
}

int cmd_stat(FileSystem& fs, const std::string& name) {
  auto meta = fs.stat(name);
  if (!meta) return fail(name, make_error(Errc::not_found, name));
  std::printf("name:              %s\n", meta->name.c_str());
  std::printf("organization:      %s\n",
              std::string(organization_name(meta->organization)).c_str());
  std::printf("category:          %s\n",
              std::string(category_name(meta->category)).c_str());
  std::printf("layout:            %s\n",
              std::string(layout_kind_name(meta->layout_kind)).c_str());
  std::printf("record bytes:      %u\n", meta->record_bytes);
  std::printf("records per block: %u\n", meta->records_per_block);
  std::printf("partitions:        %u\n", meta->partitions);
  std::printf("capacity records:  %llu\n",
              static_cast<unsigned long long>(meta->capacity_records));
  return 0;
}

int cmd_create(FileSystem& fs, const std::string& name, const Flags& flags) {
  CreateOptions opts;
  opts.name = name;
  const auto org = parse_org(flags.get("org").value_or("S"));
  if (!org) return usage();
  opts.organization = *org;
  opts.record_bytes = static_cast<std::uint32_t>(flags.get_u64("record-bytes", 4096));
  opts.capacity_records = flags.get_u64("capacity", 0);
  opts.partitions = static_cast<std::uint32_t>(flags.get_u64("partitions", 1));
  opts.records_per_block =
      static_cast<std::uint32_t>(flags.get_u64("records-per-block", 1));
  auto file = fs.create(opts);
  if (!file.ok()) return fail("create " + name, file.error());
  if (auto st = fs.sync(); !st.ok()) return fail("sync", st.error());
  std::printf("created %s\n", name.c_str());
  return 0;
}

int cmd_import(FileSystem& fs, const std::string& name,
               const std::string& host_path) {
  auto file = fs.open(name);
  if (!file.ok()) return fail(name, file.error());
  std::ifstream in(host_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "pario: cannot read %s\n", host_path.c_str());
    return 1;
  }
  GlobalSequentialView view(*file);
  const std::size_t rb = (*file)->meta().record_bytes;
  std::vector<char> buf(rb);
  std::uint64_t records = 0;
  while (in.read(buf.data(), static_cast<std::streamsize>(rb)) ||
         in.gcount() > 0) {
    std::fill(buf.begin() + in.gcount(), buf.end(), '\0');  // pad short tail
    auto st = view.write_next(std::as_bytes(std::span<const char>(buf)));
    if (!st.ok()) return fail("import", st.error());
    ++records;
    if (in.eof()) break;
  }
  if (auto st = fs.sync(); !st.ok()) return fail("sync", st.error());
  std::printf("imported %llu records into %s\n",
              static_cast<unsigned long long>(records), name.c_str());
  return 0;
}

int cmd_export(FileSystem& fs, const std::string& name,
               const std::string& host_path) {
  auto file = fs.open(name);
  if (!file.ok()) return fail(name, file.error());
  std::ofstream out(host_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "pario: cannot write %s\n", host_path.c_str());
    return 1;
  }
  GlobalSequentialView view(*file);
  const std::size_t rb = (*file)->meta().record_bytes;
  std::vector<std::byte> buf(rb);
  std::uint64_t records = 0;
  while (view.read_next(buf).ok()) {
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(rb));
    ++records;
  }
  std::printf("exported %llu records from %s\n",
              static_cast<unsigned long long>(records), name.c_str());
  return 0;
}

int cmd_stats(FileSystem& fs, DeviceArray& devices, bool json, bool profile) {
  // Touch the catalog through every file so the snapshot reflects real
  // data-path activity, then bridge the per-device counters in.
  for (const FileMeta& meta : fs.list()) {
    (void)fs.open(meta.name);
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::register_devices(registry, devices);
  if (json) {
    std::printf("%s", registry.to_json().c_str());
  } else {
    std::printf("%s", registry.to_text().c_str());
  }
  if (profile) {
    // One-shot invocations accumulate no profiled traffic; the report is
    // still well-formed (and documents how to get a populated one).
    const obs::ProfileReport report =
        obs::build_profile_report(obs::Profiler::global().snapshot());
    if (json) {
      std::printf("\n%s\n", obs::profile_to_json(report).c_str());
    } else {
      std::printf("%s", obs::profile_to_text(report).c_str());
    }
  }
  return 0;
}

// Strided view of a file through the access-method layer: read prints
// (and optionally saves) the view with its FNV-1a checksum; write fills
// the view from a host file (zero-padded tail).  --force pins the
// transfer path; the default is the auto_select heuristic.
int cmd_strided(FileSystem& fs, const std::string& op, const std::string& name,
                const std::optional<std::string>& host_path,
                const Flags& flags) {
  auto file = fs.open(name);
  if (!file.ok()) return fail(name, file.error());
  ParallelFile& pf = **file;

  StridedSpec spec;
  spec.start_record = flags.get_u64("start", 0);
  spec.block_records = flags.get_u64("block", 1);
  spec.stride_records = flags.get_u64("stride", spec.block_records);
  spec.count = flags.get_u64("count", 0);

  SieveOptions options;
  options.buffer_bytes = flags.get_u64("sieve-buf", options.buffer_bytes);
  if (const auto f = flags.get("min-fill")) {
    options.min_fill_ratio = std::strtod(f->c_str(), nullptr);
  }
  if (const auto forced = flags.get("force")) {
    if (*forced == "direct") {
      options.path = SievePath::direct;
    } else if (*forced == "sieve") {
      options.path = SievePath::sieve;
    } else {
      return usage();
    }
  }
  const bool sieved =
      options.path == SievePath::sieve ||
      (options.path == SievePath::auto_select &&
       sieve_chosen(spec, pf.meta().record_bytes, options));

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::uint64_t reads0 = registry.counter("access.sieve_reads").value();
  const std::uint64_t waste0 =
      registry.counter("access.sieve_wasted_bytes").value();

  const std::size_t rb = pf.meta().record_bytes;
  std::vector<std::byte> buf(spec.total_records() * rb);
  if (op == "read") {
    if (auto st = read_strided(pf, spec, buf, options); !st.ok()) {
      return fail("strided read " + name, st.error());
    }
    if (host_path) {
      std::ofstream out(*host_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(buf.data()),
                static_cast<std::streamsize>(buf.size()));
      if (!out) {
        std::fprintf(stderr, "pario: cannot write %s\n", host_path->c_str());
        return 1;
      }
    }
  } else {
    if (!host_path) return usage();
    std::ifstream in(*host_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "pario: cannot read %s\n", host_path->c_str());
      return 1;
    }
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));  // short tail stays 0
    if (auto st = write_strided(pf, spec, buf, options); !st.ok()) {
      return fail("strided write " + name, st.error());
    }
    if (auto st = fs.sync(); !st.ok()) return fail("sync", st.error());
  }

  std::printf("%s %llu records (%llu bytes) via %s path, fill %.3f\n",
              op == "read" ? "read" : "wrote",
              static_cast<unsigned long long>(spec.total_records()),
              static_cast<unsigned long long>(buf.size()),
              sieved ? "sieved" : "direct", spec.fill_ratio());
  std::printf("checksum: %016llx\n",
              static_cast<unsigned long long>(fnv1a(buf)));
  if (sieved) {
    std::printf(
        "sieve: %llu chunk reads, %llu wasted bytes\n",
        static_cast<unsigned long long>(
            registry.counter("access.sieve_reads").value() - reads0),
        static_cast<unsigned long long>(
            registry.counter("access.sieve_wasted_bytes").value() - waste0));
  }
  return 0;
}

// In-process smoke of the dedicated I/O server (§4): start an IoServer on
// this array, run --clients threads that each push --ops alternating
// async writes/reads over a scratch file with the canonical
// overloaded->wait-oldest->retry reaction, then drain gracefully and
// report the server's own counters.  Exit status is non-zero if any
// request failed or the drain left requests behind.
int cmd_serve(FileSystem& fs, DeviceArray& devices, const Flags& flags,
              bool profile) {
  const auto clients =
      static_cast<std::size_t>(flags.get_u64("clients", 4));
  const std::uint64_t ops = flags.get_u64("ops", 32);
  const auto record_bytes =
      static_cast<std::uint32_t>(flags.get_u64("record-bytes", 4096));
  const std::uint64_t records_per_op = flags.get_u64("records-per-op", 8);

  server::IoServerOptions options;
  options.dispatchers = static_cast<std::size_t>(flags.get_u64(
      "dispatchers", std::max<std::uint64_t>(2, devices.size())));
  options.queue_capacity =
      static_cast<std::size_t>(flags.get_u64("queue", 64));

  // Scratch file: one region of rotating slots per client, so concurrent
  // extents never overlap.  Removed again before exit.
  const std::uint64_t slots = std::min<std::uint64_t>(ops, 64);
  const std::uint64_t region = slots * records_per_op;
  const std::string scratch = "serve.scratch";
  (void)fs.remove(scratch);  // leftover from an interrupted run
  CreateOptions opts;
  opts.name = scratch;
  opts.organization = Organization::sequential;
  opts.record_bytes = record_bytes;
  opts.capacity_records = clients * region;
  auto file = fs.create(opts);
  if (!file.ok()) return fail("serve: create scratch", file.error());
  file->reset();  // hold no token ourselves; clients open by name

  server::IoServer io_server(fs, devices, options);

  // --profile: stage timelines plus a background utilization sampler
  // watching the queue/dispatcher/device levels while traffic runs.
  obs::Profiler& profiler = obs::Profiler::global();
  std::unique_ptr<obs::UtilizationSampler> sampler;
  if (profile) {
    profiler.reset();
    profiler.set_enabled(true);
    obs::SamplerOptions sampler_options;
    sampler_options.period_us = 2000;
    sampler = std::make_unique<obs::UtilizationSampler>(sampler_options);
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::Gauge& server_qd = reg.gauge("server.queue_depth");
    obs::Gauge& sched_qd = reg.gauge("iosched.queue_depth");
    server::IoServer* srv = &io_server;
    const double dispatchers = static_cast<double>(options.dispatchers);
    const double dev_workers = static_cast<double>(devices.size());
    sampler->add_series("server.queue_depth", [&server_qd] {
      return static_cast<double>(server_qd.value());
    });
    sampler->add_series("server.inflight", [srv] {
      return static_cast<double>(srv->inflight());
    });
    sampler->add_series("server.dispatcher_busy", [srv, dispatchers] {
      // busy_dispatchers(), not executing(): with non-blocking dispatch a
      // request stays "executing" while it waits at the device, so that
      // count can exceed the dispatcher pool.
      return static_cast<double>(srv->busy_dispatchers()) / dispatchers;
    });
    sampler->add_series("iosched.queue_depth", [&sched_qd] {
      return static_cast<double>(sched_qd.value());
    });
    sampler->add_series("iosched.worker_busy", [srv, dev_workers] {
      return static_cast<double>(srv->scheduler().busy_workers()) /
             dev_workers;
    });
    sampler->start();
  }

  std::atomic<std::uint64_t> failed{0};
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = server::Client::connect(io_server);
        if (!client.ok()) {
          failed += ops;
          return;
        }
        auto token = client->open(scratch);
        if (!token.ok()) {
          failed += ops;
          return;
        }
        std::vector<std::byte> buf(records_per_op * record_bytes,
                                   std::byte{static_cast<unsigned char>(c)});
        std::deque<server::Future> window;
        for (std::uint64_t i = 0; i < ops; ++i) {
          const std::uint64_t first =
              c * region + (i % slots) * records_per_op;
          for (;;) {
            auto future =
                i % 2 == 0
                    ? client->write_async(*token, first, records_per_op, buf)
                    : client->read_async(*token, first, records_per_op, buf);
            if (future.ok()) {
              window.push_back(*future);
              break;
            }
            if (future.code() != Errc::overloaded || window.empty()) {
              ++failed;
              break;
            }
            if (!window.front().wait().ok()) ++failed;
            window.pop_front();
          }
        }
        for (server::Future& f : window) {
          if (!f.wait().ok()) ++failed;
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  // The sampler reads the server's scheduler; stop it before shutdown()
  // destroys that scheduler.
  if (sampler) sampler->stop();
  if (auto st = io_server.shutdown(); !st.ok()) return fail("serve", st.error());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::uint64_t total = clients * ops;
  const std::uint64_t bytes = total * records_per_op * record_bytes;
  std::printf("served %llu requests from %zu clients in %.3f s (%.1f MB/s)\n",
              static_cast<unsigned long long>(total), clients, elapsed,
              static_cast<double>(bytes) / elapsed / 1e6);
  std::printf("server: accepted %llu  completed %llu  rejected %llu  "
              "drained %llu\n",
              static_cast<unsigned long long>(
                  registry.counter("server.accepted").value()),
              static_cast<unsigned long long>(
                  registry.counter("server.completed").value()),
              static_cast<unsigned long long>(
                  registry.counter("server.rejected").value()),
              static_cast<unsigned long long>(
                  registry.counter("server.drained").value()));
  if (profile) {
    profiler.set_enabled(false);
    const auto summaries = sampler->summary();
    const obs::ProfileReport report =
        obs::build_profile_report(profiler.snapshot());
    std::printf("%s", obs::profile_to_text(report, &summaries).c_str());
  }
  if (auto st = fs.remove(scratch); !st.ok()) {
    return fail("serve: remove scratch", st.error());
  }
  if (auto st = fs.sync(); !st.ok()) return fail("sync", st.error());
  if (failed.load() != 0) {
    std::fprintf(stderr, "pario: serve: %llu requests failed\n",
                 static_cast<unsigned long long>(failed.load()));
    return 1;
  }
  if (io_server.inflight() != 0) {
    std::fprintf(stderr, "pario: serve: drain left requests in flight\n");
    return 1;
  }
  return 0;
}

int cmd_convert(FileSystem& fs, const std::string& src_name,
                const std::string& dst_name) {
  auto src = fs.open(src_name);
  if (!src.ok()) return fail(src_name, src.error());
  auto dst = fs.open(dst_name);
  if (!dst.ok()) return fail(dst_name, dst.error());
  auto copied = convert_copy(*src, *dst);
  if (!copied.ok()) return fail("convert", copied.error());
  if (auto st = fs.sync(); !st.ok()) return fail("sync", st.error());
  std::printf("converted %llu records %s -> %s\n",
              static_cast<unsigned long long>(*copied), src_name.c_str(),
              dst_name.c_str());
  return 0;
}

double metric_value(const std::string& name) {
  for (const obs::MetricSample& s : obs::MetricsRegistry::global().snapshot()) {
    if (s.name == name) return s.value;
  }
  return 0.0;
}

/// Self-contained fault-tolerance demo on an in-memory parity-protected
/// array (no device directory needed): a FaultPlan kills one member mid
/// workload, the ResilientArray keeps serving it degraded, then an online
/// rebuild re-materializes the device while traffic continues.  Every op
/// is checked against a host-side model; exits nonzero on any mismatch.
int cmd_chaos(const Flags& flags) {
  const auto n_data =
      static_cast<std::size_t>(std::max<std::uint64_t>(2, flags.get_u64("devices", 3)));
  const std::uint64_t cap = flags.get_u64("device-kb", 256) << 10;
  const std::uint64_t n_ops = flags.get_u64("ops", 600);
  // The kill index counts the VICTIM's own data ops (~1/devices of the
  // workload), so the default must sit well inside phase 1's share.
  const std::uint64_t kill_op = flags.get_u64("kill-op", 50);
  const std::uint64_t seed = flags.get_u64("seed", 1989);
  constexpr std::uint64_t kIo = 4096;
  if (cap < kIo) {
    return fail("chaos",
                make_error(Errc::invalid_argument, "--device-kb must be at least 4"));
  }

  DeviceArray array;
  std::vector<FaultyDevice*> faulty;
  for (std::size_t d = 0; d < n_data; ++d) {
    auto dev = std::make_unique<FaultyDevice>(
        std::make_unique<RamDisk>("data" + std::to_string(d), cap));
    faulty.push_back(dev.get());
    array.add(std::move(dev));
  }
  RamDisk parity("parity", cap);
  std::vector<BlockDevice*> members;
  std::vector<std::size_t> indices;
  for (std::size_t d = 0; d < n_data; ++d) {
    members.push_back(&array[d]);
    indices.push_back(d);
  }
  ParityGroup group(members, &parity);
  ResilientOptions opts;
  opts.retry.base_backoff_us = 0;  // demo: don't sleep on transients
  opts.retry.max_backoff_us = 0;
  opts.health.open_ops = 8;
  ResilientArray resilient(array, opts);
  if (auto st = resilient.protect_with_parity(group, indices); !st.ok()) {
    return fail("chaos", st.error());
  }

  // Scripted fault on the victim: a couple of transient blips, then a hard
  // kill at --kill-op (of the victim's own op counter).
  const std::size_t victim = n_data / 2;
  FaultPlan plan;
  plan.transient_windows.push_back({kill_op / 4, kill_op / 4 + 2});
  plan.fail_at_op = static_cast<std::int64_t>(kill_op);
  plan.seed = seed;
  faulty[victim]->set_plan(plan);

  // Host-side model of what every device must logically contain.
  std::vector<std::vector<std::byte>> model(
      n_data, std::vector<std::byte>(static_cast<std::size_t>(cap)));
  const std::uint64_t slots = cap / kIo;
  Rng rng{seed};
  std::vector<std::byte> buf(kIo);
  std::uint64_t mismatches = 0;

  const double degraded_reads0 = metric_value("reliability.degraded_reads");
  const double rebuild_bytes0 = metric_value("reliability.rebuild_bytes");

  auto run_ops = [&](std::uint64_t count) -> Status {
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto d = static_cast<std::size_t>(rng.uniform_u64(n_data));
      const std::uint64_t off = rng.uniform_u64(slots) * kIo;
      if (rng.uniform() < 0.5) {
        for (std::uint64_t b = 0; b < kIo; ++b) {
          buf[b] = static_cast<std::byte>((i * 131 + d * 17 + off + b) & 0xff);
        }
        PIO_TRY(resilient.write(d, off, buf));
        std::copy(buf.begin(), buf.end(),
                  model[d].begin() + static_cast<std::ptrdiff_t>(off));
      } else {
        PIO_TRY(resilient.read(d, off, buf));
        if (!std::equal(buf.begin(), buf.end(),
                        model[d].begin() + static_cast<std::ptrdiff_t>(off))) {
          ++mismatches;
        }
      }
    }
    return ok_status();
  };

  // Phase 1: enough traffic to hit the transient window and the kill.
  if (auto st = run_ops(n_ops / 2); !st.ok()) return fail("chaos ops", st.error());
  const bool killed = faulty[victim]->failed();

  // Phase 2: online rebuild while the same traffic keeps flowing.
  RebuildOptions rebuild;
  rebuild.chunk_bytes = 16 * 1024;
  FaultyDevice* dead = faulty[victim];
  rebuild.on_complete = [dead] { dead->repair(); };
  if (auto st = resilient.start_rebuild(victim, dead->inner(), rebuild); !st.ok()) {
    return fail("chaos rebuild", st.error());
  }
  if (auto st = run_ops(n_ops - n_ops / 2); !st.ok()) {
    return fail("chaos ops", st.error());
  }
  if (auto st = resilient.wait_rebuild(); !st.ok()) {
    return fail("chaos rebuild", st.error());
  }

  // Verify every device's full contents — raw reads, no degraded service:
  // the rebuild must have re-materialized the victim byte-for-byte.
  for (std::size_t d = 0; d < n_data; ++d) {
    for (std::uint64_t off = 0; off < cap; off += kIo) {
      if (auto st = array[d].read(off, buf); !st.ok()) {
        return fail("chaos verify", st.error());
      }
      if (!std::equal(buf.begin(), buf.end(),
                      model[d].begin() + static_cast<std::ptrdiff_t>(off))) {
        ++mismatches;
      }
    }
  }

  const double degraded_reads =
      metric_value("reliability.degraded_reads") - degraded_reads0;
  const double rebuild_bytes =
      metric_value("reliability.rebuild_bytes") - rebuild_bytes0;
  std::printf(
      "chaos: devices=%zu ops=%llu killed_device=%zu killed=%s "
      "degraded_reads=%.0f rebuild_bytes=%.0f mismatches=%llu\n",
      n_data, static_cast<unsigned long long>(n_ops), victim,
      killed ? "yes" : "no", degraded_reads, rebuild_bytes,
      static_cast<unsigned long long>(mismatches));
  if (mismatches != 0 || !killed) {
    std::fprintf(stderr, "pario: chaos verification FAILED\n");
    return 1;
  }
  std::printf("chaos: verified OK\n");
  return 0;
}

/// Self-contained multi-server demo (no device directory needed): S
/// in-memory data servers behind the metadata service, C client threads
/// routing record ops through the client-side router.  Each thread owns a
/// disjoint record region and checks every read against a host-side
/// model; a final strided sweep and a full contiguous readback verify the
/// distributed file stays byte-identical to the single-file view.
int cmd_cluster(const Flags& flags, bool chaos) {
  const auto n_servers = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, flags.get_u64("data-servers", 4)));
  const auto n_clients = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, flags.get_u64("clients", 4)));
  const std::uint64_t n_ops = flags.get_u64("ops", 200);
  const std::uint64_t records = std::max<std::uint64_t>(
      n_clients * 8, flags.get_u64("records", 1536));
  const auto record_bytes =
      static_cast<std::uint32_t>(flags.get_u64("record-bytes", 512));
  const std::uint64_t seed = flags.get_u64("seed", 1989);
  const std::string dist_name =
      flags.get("distribution").value_or("strided");
  const auto kind = cluster::parse_distribution_kind(dist_name);
  if (!kind) {
    return fail("cluster", make_error(Errc::invalid_argument,
                                      "--distribution must be block, "
                                      "cyclic, or strided"));
  }

  cluster::ClusterOptions options;
  options.data_servers = n_servers;
  options.data_server.devices = 2;
  options.data_server.device_bytes = 4ull << 20;
  // Chaos mode: price device ops so the workload outlasts the scripted
  // outage window instead of finishing before the faults land.
  if (chaos) options.data_server.device_op_cost_us = 200.0;
  auto cl = cluster::Cluster::create(options);
  if (!cl.ok()) return fail("cluster", cl.error());

  // Chaos mode: a scriptable unreliable network between router and
  // servers — transient busy submits, dropped completions (retried under
  // the same idem key and deduplicated server-side), a late duplicated
  // write, plus one mid-run server outage toggled by wall clock.
  cluster::TransportFaultPlan fault_plan;
  if (chaos) {
    fault_plan.channel.busy_windows = {{3, 6}};
    fault_plan.channel.busy_probability = 0.05;
    fault_plan.channel.drop_completion_probability = 0.01;
    fault_plan.channel.duplicate_windows = {{6, 8}};
    fault_plan.channel.duplicate_delay_us = 2'000;
    // Every channel (including reconnect replacements) dies on its 40th
    // submit, so the demo exercises reconnect + token re-open too.
    fault_plan.channel.disconnect_at_op = 40;
    fault_plan.channel.seed = seed;
  }
  cluster::FaultyTransport faulty((*cl)->transport(), fault_plan);

  cluster::ClusterClientOptions copts;
  if (chaos) {
    copts.sub_deadline_ms = 300;
    copts.op_deadline_ms = 20'000;
    copts.retry.max_attempts = 6;
    copts.retry.base_backoff_us = 200;
    copts.retry.max_backoff_us = 2'000;
    copts.breaker.error_threshold = 3;
    copts.breaker.open_ops = 8;
  }
  auto make_client = [&]() {
    return chaos ? cluster::ClusterClient::connect((*cl)->metadata(), faulty,
                                                   copts)
                 : (*cl)->connect();
  };

  cluster::ClusterCreateOptions create;
  create.name = "demo";
  create.record_bytes = record_bytes;
  create.capacity_records = records;
  create.distribution.kind = *kind;
  if (auto meta = (*cl)->metadata().create(create); !meta.ok()) {
    return fail("cluster create", meta.error());
  }

  // Host-side model; each client thread owns a disjoint record region, so
  // threads verify concurrently without coordinating.
  std::vector<std::byte> model(records * record_bytes, std::byte{0});
  const std::uint64_t per_client = records / n_clients;
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<int> errors{0};

  // During the chaos outage the router fails fast with typed errors
  // (unavailable while the breaker is open, timed_out past a deadline);
  // the app-level reaction is a bounded retry until the server returns.
  auto settle = [chaos](auto&& op) -> Status {
    Status st = op();
    for (int tries = 0;
         chaos && !st.ok() && tries < 400 &&
         (st.code() == Errc::unavailable || st.code() == Errc::timed_out);
         ++tries) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      st = op();
    }
    return st;
  };

  std::thread outage;
  if (chaos) {
    outage = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      faulty.set_server_down(n_servers > 1 ? 1 : 0, true);
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
      faulty.set_server_down(n_servers > 1 ? 1 : 0, false);
    });
  }

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < n_clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = make_client();
      if (!client.ok()) { ++errors; return; }
      auto token = client->open("demo");
      if (!token.ok()) { ++errors; return; }
      Rng rng{seed + c};
      const std::uint64_t base = c * per_client;
      std::byte* region = model.data() + base * record_bytes;
      std::vector<std::byte> buf;
      for (std::uint64_t i = 0; i < n_ops; ++i) {
        const std::uint64_t count = 1 + rng.uniform_u64(8);
        const std::uint64_t first = base + rng.uniform_u64(per_client - count);
        buf.assign(count * record_bytes, std::byte{0});
        if (rng.uniform() < 0.5) {
          for (std::size_t b = 0; b < buf.size(); ++b) {
            buf[b] = static_cast<std::byte>((i * 131 + first * 7 + b) & 0xff);
          }
          if (!settle([&] {
                 return client->write_records(*token, first, count, buf);
               }).ok()) {
            ++errors;
            return;
          }
          std::copy(buf.begin(), buf.end(),
                    region + (first - base) * record_bytes);
        } else {
          if (!settle([&] {
                 return client->read_records(*token, first, count, buf);
               }).ok()) {
            ++errors;
            return;
          }
          if (!std::equal(buf.begin(), buf.end(),
                          region + (first - base) * record_bytes)) {
            ++mismatches;
          }
        }
      }
      // Strided sweep over the region: every other record in one view op.
      StridedSpec spec;
      spec.start_record = base;
      spec.block_records = 1;
      spec.stride_records = 2;
      spec.count = per_client / 2;
      buf.assign(spec.total_records() * record_bytes, std::byte{0});
      if (!settle([&] { return client->read_strided(*token, spec, buf); })
               .ok()) {
        ++errors;
        return;
      }
      for (std::uint64_t g = 0; g < spec.count; ++g) {
        if (!std::equal(
                buf.begin() + static_cast<std::ptrdiff_t>(g * record_bytes),
                buf.begin() +
                    static_cast<std::ptrdiff_t>((g + 1) * record_bytes),
                region + 2 * g * record_bytes)) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (outage.joinable()) outage.join();

  // Full contiguous readback: the distributed file equals the model.
  {
    auto client = (*cl)->connect();
    if (!client.ok()) return fail("cluster", client.error());
    auto token = client->open("demo");
    if (!token.ok()) return fail("cluster", token.error());
    std::vector<std::byte> all(records * record_bytes);
    if (auto st = client->read_records(*token, 0, records, all); !st.ok()) {
      return fail("cluster readback", st.error());
    }
    if (all != model) ++mismatches;
  }

  std::printf("cluster: servers=%zu clients=%zu distribution=%s records=%llu "
              "record_bytes=%u requests=%.0f subrequests=%.0f\n",
              n_servers, n_clients,
              cluster::distribution_kind_name(*kind).data(),
              static_cast<unsigned long long>(records), record_bytes,
              metric_value("cluster.requests"),
              metric_value("cluster.subrequests"));
  for (std::size_t s = 0; s < n_servers; ++s) {
    const std::string prefix = "cluster.server" + std::to_string(s);
    std::printf("  server%zu: subrequests=%.0f bytes=%.0f\n", s,
                metric_value(prefix + ".subrequests"),
                metric_value(prefix + ".bytes"));
  }
  if (chaos) {
    std::printf("cluster-chaos: retries=%.0f timeouts=%.0f reconnects=%.0f "
                "breaker_open=%.0f dedup_hits=%.0f\n",
                metric_value("cluster.retries"),
                metric_value("cluster.timeouts"),
                metric_value("cluster.reconnects"),
                metric_value("cluster.breaker_open"),
                metric_value("server.dedup_hits"));
  }
  if (auto st = (*cl)->shutdown(); !st.ok()) {
    return fail("cluster shutdown", st.error());
  }
  if (errors.load() != 0 || mismatches.load() != 0) {
    std::fprintf(stderr, "pario: cluster verification FAILED "
                 "(errors=%d mismatches=%llu)\n", errors.load(),
                 static_cast<unsigned long long>(mismatches.load()));
    return 1;
  }
  std::printf("cluster: verified OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the valueless --profile / --chaos flags anywhere on the line so
  // the paired --key value scanner below never sees them.
  bool profile = false;
  bool chaos_cluster = false;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--profile") == 0) {
        profile = true;
        continue;
      }
      if (std::strcmp(argv[i], "--chaos") == 0) {
        chaos_cluster = true;
        continue;
      }
      argv[out++] = argv[i];
    }
    argc = out;
  }
  if (argc < 3) return usage();
  const std::string dir = argv[1];
  const std::string cmd = argv[2];
  Flags flags(argc, argv, 3);

  if (cmd == "format") return cmd_format(dir, flags);
  // chaos is self-contained (in-memory array) — no device directory needed.
  if (cmd == "chaos") return cmd_chaos(flags);
  if (cmd == "cluster") return cmd_cluster(flags, chaos_cluster);

  auto arr = open_array(dir);
  if (!arr.ok()) return fail(dir, arr.error());
  auto fs = FileSystem::mount(*arr);
  if (!fs.ok()) return fail("mount " + dir, fs.error());

  if (cmd == "ls") return cmd_ls(**fs);
  if (cmd == "df") return cmd_df(**fs);
  if (cmd == "stats") {
    bool json = false;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) json = true;
    }
    return cmd_stats(**fs, *arr, json, profile);
  }
  if (cmd == "stat" && argc >= 4) return cmd_stat(**fs, argv[3]);
  if (cmd == "rm" && argc >= 4) {
    if (auto st = (*fs)->remove(argv[3]); !st.ok()) return fail("rm", st.error());
    std::printf("removed %s\n", argv[3]);
    return 0;
  }
  if (cmd == "create" && argc >= 4) {
    return cmd_create(**fs, argv[3], Flags(argc, argv, 4));
  }
  if (cmd == "strided" && argc >= 5) {
    const std::string op = argv[3];
    if (op != "read" && op != "write") return usage();
    std::optional<std::string> host_path;
    if (argc >= 6 && std::strncmp(argv[5], "--", 2) != 0) {
      host_path = argv[5];
    }
    return cmd_strided(**fs, op, argv[4], host_path,
                       Flags(argc, argv, host_path ? 6 : 5));
  }
  if (cmd == "serve") return cmd_serve(**fs, *arr, flags, profile);
  if (cmd == "import" && argc >= 5) return cmd_import(**fs, argv[3], argv[4]);
  if (cmd == "export" && argc >= 5) return cmd_export(**fs, argv[3], argv[4]);
  if (cmd == "convert" && argc >= 5) return cmd_convert(**fs, argv[3], argv[4]);
  return usage();
}
